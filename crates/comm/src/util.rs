//! Payload encoding helpers (little-endian byte layouts).

/// Encode a `f64` slice as little-endian bytes.
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `f64`s (length must be a multiple
/// of 8).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte payload length {} is not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Encode a `u64` slice as little-endian bytes.
pub fn u64s_to_bytes(data: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `u64`s.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte payload length {} is not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 64-bit scrambler (SplitMix64 step) so the roundtrip
    /// tests cover many bit patterns without an external property-test
    /// dependency.
    fn scramble(i: u64) -> u64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn f64_roundtrip() {
        // Random-ish patterns plus the special values (NaN, ±∞, ±0,
        // subnormals) whose bit patterns must survive unchanged.
        for len in [0usize, 1, 2, 7, 63] {
            let mut xs: Vec<f64> = (0..len as u64)
                .map(|i| f64::from_bits(scramble(i)))
                .collect();
            xs.extend([
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MIN_POSITIVE / 2.0,
            ]);
            let back = bytes_to_f64s(&f64s_to_bytes(&xs));
            assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                assert!(a.to_bits() == b.to_bits());
            }
        }
    }

    #[test]
    fn u64_roundtrip() {
        for len in [0usize, 1, 3, 8, 64] {
            let xs: Vec<u64> = (0..len as u64).map(scramble).collect();
            assert_eq!(bytes_to_u64s(&u64s_to_bytes(&xs)), xs);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_ragged_payload() {
        bytes_to_f64s(&[1, 2, 3]);
    }
}
