//! Payload encoding helpers (little-endian byte layouts).

/// Encode a `f64` slice as little-endian bytes.
pub fn f64s_to_bytes(data: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `f64`s (length must be a multiple
/// of 8).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte payload length {} is not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Encode a `u64` slice as little-endian bytes.
pub fn u64s_to_bytes(data: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 8);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `u64`s.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte payload length {} is not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn f64_roundtrip(xs in proptest::collection::vec(any::<f64>(), 0..64)) {
            let back = bytes_to_f64s(&f64s_to_bytes(&xs));
            prop_assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }

        #[test]
        fn u64_roundtrip(xs in proptest::collection::vec(any::<u64>(), 0..64)) {
            prop_assert_eq!(bytes_to_u64s(&u64s_to_bytes(&xs)), xs);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_ragged_payload() {
        bytes_to_f64s(&[1, 2, 3]);
    }
}
