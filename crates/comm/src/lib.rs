//! Message-passing substrate for a (simulated) massively parallel computer.
//!
//! The SC'93-class QMC codes were written against NX/CMMD-style message
//! passing on 2-D mesh multicomputers. Rust's MPI story is thin, so this
//! crate *is* the machine:
//!
//! * [`ThreadComm`] / [`run_threads`] — every rank is an OS thread on the
//!   host; messages go through in-memory mailboxes. Real concurrency, real
//!   wall-clock speedups, used by all correctness tests.
//! * [`ModelComm`] / [`run_model`] — the same program text executes under a
//!   **virtual clock** with an `α + β·bytes + hops·δ` network cost model
//!   and a configurable per-node compute rate ([`MachineModel`]). This is
//!   how the P = 1…1024 scaling tables are regenerated deterministically on
//!   a laptop: the *shape* of the speedup curves depends only on the model,
//!   not on host scheduling.
//! * [`SerialComm`] — the size-1 degenerate communicator, so every solver
//!   can run single-rank without ceremony.
//!
//! # Programming model
//!
//! SPMD with explicit-source, explicit-tag messaging: `send` is buffered
//! and non-blocking, `recv(src, tag)` blocks. Because receives always name
//! their source and tag, message matching is deterministic — a fixed
//! program yields bit-identical results regardless of host thread
//! scheduling (this is also what makes the virtual clock well defined).
//!
//! Collectives (barrier, broadcast, reduce, gather) are provided methods
//! implemented with textbook binomial-tree / recursive-doubling patterns on
//! top of point-to-point sends, so the cost model automatically charges
//! them their real `O(log P)` critical path.
//!
//! ```
//! use qmc_comm::{run_threads, Communicator, ReduceOp};
//!
//! // Four thread-backed ranks sum their ranks with an allreduce.
//! let results = run_threads(4, |comm| {
//!     comm.allreduce_f64(&[comm.rank() as f64], ReduceOp::Sum)[0]
//! });
//! assert_eq!(results, vec![6.0; 4]);
//! ```
//!
//! ```
//! use qmc_comm::{run_model, job_seconds, Communicator, MachineModel};
//!
//! // The same program under the simulated 1993 mesh: virtual time moves
//! // only through compute charges and modeled message delays.
//! let reports = run_model(2, MachineModel::mesh_1993(2), |comm| {
//!     comm.compute(1_000_000.0); // one million flop-equivalents
//!     comm.barrier();
//! });
//! assert!(job_seconds(&reports) > 0.03); // ≥ 1 Mflop at 25 Mflop/s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadlock;
mod mailbox;
mod serial;
mod thread_world;

pub mod crc;
pub mod faulty;
pub mod model;
pub mod tcp;

pub mod util;

pub use faulty::{FaultPlan, FaultStats, FaultyComm};
pub use model::{job_seconds, run_model, MachineModel, ModelComm, ModelReport};
pub use serial::SerialComm;
pub use thread_world::{
    run_threads, run_threads_elastic, run_threads_with_timeout, ElasticError, ElasticRun,
    ThreadComm,
};

use std::time::Duration;

/// Tags at or above this value are reserved for the collective
/// implementations; user code must stay below.
pub const COLLECTIVE_TAG_BASE: u32 = 0x8000_0000;

/// Shared misuse check for user-level receives: every back-end panics
/// with the same rank/src/tag context on an out-of-range source or a
/// reserved-range tag, so a bad receive is diagnosable regardless of
/// which communicator the engine happens to be running on.
#[inline]
pub(crate) fn check_recv_args(me: usize, size: usize, src: usize, tag: u32) {
    assert!(
        src < size,
        "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world"
    );
    assert!(
        tag < COLLECTIVE_TAG_BASE,
        "rank {me}: recv(src={src}, tag={tag:#x}): tag is reserved for collectives"
    );
}

/// Reduction operators for [`Communicator::allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Per-rank communication statistics, in virtual seconds for
/// [`ModelComm`] and wall seconds for [`ThreadComm`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (collective-internal ones included).
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received (collective-internal included).
    pub messages_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Largest single payload moved in either direction, in bytes.
    pub max_message_bytes: u64,
    /// Time attributed to communication (send overhead + receive waits).
    pub comm_seconds: f64,
    /// Time attributed to computation (explicit [`Communicator::compute`]
    /// charges under the model; unused by the thread back-end).
    pub compute_seconds: f64,
    /// Time spent blocked in receives waiting for a message to become
    /// available (a subset of `comm_seconds`: excludes send and receive
    /// overheads). Zero for [`SerialComm`], whose receives never block.
    pub recv_wait_seconds: f64,
}

impl CommStats {
    /// Fraction of accounted time spent communicating:
    /// `comm / (comm + compute)`, or 0 when nothing was accounted.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.comm_seconds + self.compute_seconds;
        if total > 0.0 {
            self.comm_seconds / total
        } else {
            0.0
        }
    }

    /// Elementwise sum of two stat records (used when aggregating ranks).
    pub fn merged(&self, other: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            messages_recv: self.messages_recv + other.messages_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            max_message_bytes: self.max_message_bytes.max(other.max_message_bytes),
            comm_seconds: self.comm_seconds + other.comm_seconds,
            compute_seconds: self.compute_seconds + other.compute_seconds,
            recv_wait_seconds: self.recv_wait_seconds + other.recv_wait_seconds,
        }
    }

    #[inline]
    fn note_sent(&mut self, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.max_message_bytes = self.max_message_bytes.max(bytes as u64);
    }

    #[inline]
    fn note_received(&mut self, bytes: usize) {
        self.messages_recv += 1;
        self.bytes_recv += bytes as u64;
        self.max_message_bytes = self.max_message_bytes.max(bytes as u64);
    }
}

/// The SPMD communication interface all engines are written against.
pub trait Communicator {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Buffered, non-blocking send of a byte payload.
    ///
    /// Panics if `tag >= COLLECTIVE_TAG_BASE` (reserved) or `dest` is out
    /// of range.
    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]);

    /// Blocking receive of the next message from `src` with `tag`.
    ///
    /// Panics with rank/src/tag context if `src` is out of range or `tag`
    /// is in the reserved collective range (same contract as
    /// [`Self::send_bytes`], uniform across back-ends).
    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8>;

    /// Receive like [`Self::recv_bytes`], but give up after `timeout` and
    /// return `None` instead of blocking forever.
    ///
    /// This is the primitive fault-tolerant retry loops are built on
    /// (see `FaultyComm`): a lost message shows up as a timeout, the
    /// caller retries with backoff, and a peer that is truly gone turns
    /// into a bounded failure instead of a hang. Misuse (bad `src`,
    /// reserved `tag`) still panics — only the *absence of a message* is
    /// reported via `None`.
    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        let _ = timeout;
        Some(self.recv_bytes(src, tag))
    }

    /// Charge `units` of abstract compute work to this rank's clock.
    ///
    /// Under [`ModelComm`] a unit is one floating-point-op-equivalent;
    /// [`ThreadComm`] ignores the charge (real time passes instead).
    fn compute(&mut self, units: f64);

    /// Elapsed time on this rank's clock, in seconds.
    ///
    /// Two clock semantics coexist behind this one method (pinned by the
    /// `clock semantics` unit tests in each back-end):
    ///
    /// * **Wall** ([`SerialComm`], [`ThreadComm`]): monotonically advances
    ///   with host time; [`Self::compute`] charges are accounting only and
    ///   never move it.
    /// * **Virtual** ([`ModelComm`]): advances *only* through
    ///   [`Self::compute`] charges and modeled message latency; host wall
    ///   time (sleeps, slow hardware) never moves it.
    fn now(&self) -> f64;

    /// Communication statistics so far.
    fn stats(&self) -> CommStats;

    // ------------------------------------------------------------------
    // Internal plumbing for the provided collectives.
    // ------------------------------------------------------------------

    /// Monotone counter shared by the provided collectives; every rank
    /// must call collectives in the same order (SPMD discipline).
    #[doc(hidden)]
    fn next_collective_seq(&mut self) -> u32;

    /// Reserved-tag send used by the provided collectives.
    #[doc(hidden)]
    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]);

    /// Reserved-tag receive used by the provided collectives.
    #[doc(hidden)]
    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8>;

    // ------------------------------------------------------------------
    // Typed convenience wrappers.
    // ------------------------------------------------------------------

    /// Send a slice of `f64`s.
    fn send_f64s(&mut self, dest: usize, tag: u32, data: &[f64]) {
        self.send_bytes(dest, tag, &util::f64s_to_bytes(data));
    }

    /// Receive a vector of `f64`s.
    fn recv_f64s(&mut self, src: usize, tag: u32) -> Vec<f64> {
        util::bytes_to_f64s(&self.recv_bytes(src, tag))
    }

    /// Combined send-then-receive (safe because sends are buffered): the
    /// idiom for halo exchange with a mesh neighbour pair.
    fn sendrecv_bytes(
        &mut self,
        dest: usize,
        send_tag: u32,
        data: &[u8],
        src: usize,
        recv_tag: u32,
    ) -> Vec<u8> {
        self.send_bytes(dest, send_tag, data);
        self.recv_bytes(src, recv_tag)
    }

    /// Blocking receive into a caller-provided buffer.
    ///
    /// Contract: `buf` is cleared and then filled with exactly the payload
    /// of the matched message; its *capacity* is reused, so a caller that
    /// keeps the buffer alive across iterations performs no steady-state
    /// heap allocation. The default delegates to [`Self::recv_bytes`];
    /// the in-repo back-ends override it to copy straight out of the
    /// mailbox message.
    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        let msg = self.recv_bytes(src, tag);
        buf.clear();
        buf.extend_from_slice(&msg);
    }

    /// Buffer-reuse variant of [`Self::sendrecv_bytes`]: the received
    /// payload lands in `recv_buf` (cleared first, capacity reused). Same
    /// buffered-send-then-blocking-receive semantics; the default impl
    /// delegates to [`Self::send_bytes`] + [`Self::recv_bytes_into`].
    fn sendrecv_bytes_into(
        &mut self,
        dest: usize,
        send_tag: u32,
        data: &[u8],
        src: usize,
        recv_tag: u32,
        recv_buf: &mut Vec<u8>,
    ) {
        self.send_bytes(dest, send_tag, data);
        self.recv_bytes_into(src, recv_tag, recv_buf);
    }

    // ------------------------------------------------------------------
    // Collectives (binomial tree / recursive doubling on point-to-point).
    // ------------------------------------------------------------------

    /// Synchronize all ranks (dissemination pattern, `⌈log₂ P⌉` rounds).
    fn barrier(&mut self) {
        let seq = self.next_collective_seq();
        let p = self.size();
        if p == 1 {
            return;
        }
        let me = self.rank();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist % p) % p;
            let tag = COLLECTIVE_TAG_BASE + seq.wrapping_mul(64) + round;
            self.send_internal(to, tag, &[]);
            self.recv_internal(from, tag);
            dist *= 2;
            round += 1;
        }
    }

    /// Broadcast `data` from `root` to every rank (binomial tree).
    fn broadcast_bytes(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let seq = self.next_collective_seq();
        let p = self.size();
        if p == 1 {
            return data;
        }
        let tag = COLLECTIVE_TAG_BASE + seq.wrapping_mul(64);
        let me = self.rank();
        let vrank = (me + p - root) % p; // root maps to virtual 0
                                         // Receive once (unless root), then forward down the tree.
        let mut buf = if vrank == 0 {
            data
        } else {
            // Parent: clear the lowest set bit of vrank.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % p;
            self.recv_internal(parent, tag)
        };
        // Children: vrank + 2^k for k above vrank's lowest set bit range.
        let lowbit = if vrank == 0 {
            usize::MAX
        } else {
            vrank.trailing_zeros() as usize
        };
        let mut k = 0usize;
        while (1usize << k) < p {
            if k < lowbit {
                let child_v = vrank | (1 << k);
                if child_v != vrank && child_v < p {
                    let child = (child_v + root) % p;
                    let payload = std::mem::take(&mut buf);
                    self.send_internal(child, tag, &payload);
                    buf = payload;
                }
            }
            k += 1;
        }
        buf
    }

    /// Elementwise reduction of a `f64` vector across all ranks; every
    /// rank receives the result (recursive doubling with a fold-in step
    /// for non-power-of-two sizes).
    fn allreduce_f64(&mut self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        let seq = self.next_collective_seq();
        let p = self.size();
        let mut acc = values.to_vec();
        if p == 1 {
            return acc;
        }
        let me = self.rank();
        let base = COLLECTIVE_TAG_BASE + seq.wrapping_mul(64);
        // Largest power of two ≤ p.
        let p2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
        let extra = p - p2;

        // Phase 1: ranks ≥ p2 fold into their partner (rank − p2).
        if me >= p2 {
            self.send_internal(me - p2, base, &util::f64s_to_bytes(&acc));
        } else if me < extra {
            let other = util::bytes_to_f64s(&self.recv_internal(me + p2, base));
            fold(&mut acc, &other, op);
        }

        // Phase 2: recursive doubling among ranks < p2.
        if me < p2 {
            let mut mask = 1usize;
            let mut round = 1u32;
            while mask < p2 {
                let partner = me ^ mask;
                let tag = base + round;
                self.send_internal(partner, tag, &util::f64s_to_bytes(&acc));
                let other = util::bytes_to_f64s(&self.recv_internal(partner, tag));
                fold(&mut acc, &other, op);
                mask <<= 1;
                round += 1;
            }
        }

        // Phase 3: partners get the result back.
        let final_tag = base + 63;
        if me < extra {
            self.send_internal(me + p2, final_tag, &util::f64s_to_bytes(&acc));
        } else if me >= p2 {
            acc = util::bytes_to_f64s(&self.recv_internal(me - p2, final_tag));
        }
        acc
    }

    /// Gather each rank's payload at `root`; returns `Some(payloads)` (in
    /// rank order) on the root and `None` elsewhere.
    fn gather_bytes(&mut self, root: usize, data: &[u8]) -> Option<Vec<Vec<u8>>> {
        let seq = self.next_collective_seq();
        let tag = COLLECTIVE_TAG_BASE + seq.wrapping_mul(64);
        let p = self.size();
        let me = self.rank();
        if me == root {
            let mut out = Vec::with_capacity(p);
            for r in 0..p {
                if r == me {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_internal(r, tag));
                }
            }
            Some(out)
        } else {
            self.send_internal(root, tag, data);
            None
        }
    }

    /// Gather `f64` payloads at `root`.
    fn gather_f64s(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.gather_bytes(root, &util::f64s_to_bytes(data))
            .map(|v| v.iter().map(|b| util::bytes_to_f64s(b)).collect())
    }
}

#[inline]
fn fold(acc: &mut [f64], other: &[f64], op: ReduceOp) {
    assert_eq!(
        acc.len(),
        other.len(),
        "allreduce payload lengths differ across ranks"
    );
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = op.apply(*a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_semantics() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn serial_collectives_are_identity() {
        let mut c = SerialComm::new();
        assert_eq!(c.allreduce_f64(&[1.0, 2.0], ReduceOp::Sum), vec![1.0, 2.0]);
        assert_eq!(c.broadcast_bytes(0, vec![9]), vec![9]);
        c.barrier();
        assert_eq!(c.gather_bytes(0, &[7]).unwrap(), vec![vec![7]]);
    }

    #[test]
    fn thread_world_point_to_point() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 5, &[1, 2, 3]);
                0u8
            } else {
                comm.recv_bytes(0, 5)[2]
            }
        });
        assert_eq!(results, vec![0, 3]);
    }

    #[test]
    fn thread_world_allreduce_sum_all_sizes() {
        for p in 1..=9usize {
            let results = run_threads(p, move |comm| {
                let v = [comm.rank() as f64, 1.0];
                comm.allreduce_f64(&v, ReduceOp::Sum)
            });
            let expect = vec![(p * (p - 1) / 2) as f64, p as f64];
            for r in results {
                assert_eq!(r, expect, "P = {p}");
            }
        }
    }

    #[test]
    fn thread_world_allreduce_max_min() {
        let results = run_threads(5, |comm| {
            let v = [comm.rank() as f64];
            (
                comm.allreduce_f64(&v, ReduceOp::Max)[0],
                comm.allreduce_f64(&v, ReduceOp::Min)[0],
            )
        });
        for (mx, mn) in results {
            assert_eq!(mx, 4.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn thread_world_broadcast_all_roots() {
        for p in [1usize, 2, 3, 4, 7, 8] {
            for root in 0..p {
                let results = run_threads(p, move |comm| {
                    let data = if comm.rank() == root {
                        vec![42, root as u8]
                    } else {
                        Vec::new()
                    };
                    comm.broadcast_bytes(root, data)
                });
                for r in results {
                    assert_eq!(r, vec![42, root as u8], "P={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn thread_world_gather_rank_order() {
        let results = run_threads(4, |comm| comm.gather_bytes(2, &[comm.rank() as u8]));
        for (r, res) in results.into_iter().enumerate() {
            if r == 2 {
                assert_eq!(res.unwrap(), vec![vec![0u8], vec![1], vec![2], vec![3]]);
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn thread_world_barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        run_threads(8, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank's increment must be visible.
            assert_eq!(c2.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn sendrecv_halo_ring() {
        // Each rank passes its rank id to the right around a ring.
        let results = run_threads(6, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let got = comm.sendrecv_bytes(right, 1, &[comm.rank() as u8], left, 1);
            got[0] as usize
        });
        assert_eq!(results, vec![5, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn sendrecv_into_ring_reuses_buffer() {
        // Repeated buffered exchanges must reuse the receive buffer's
        // allocation: the pointer never moves once capacity suffices.
        let results = run_threads(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let mut buf: Vec<u8> = Vec::with_capacity(16);
            let ptr0 = buf.as_ptr() as usize;
            for round in 0..10u8 {
                comm.sendrecv_bytes_into(right, 2, &[comm.rank() as u8, round], left, 2, &mut buf);
                assert_eq!(buf, [left as u8, round]);
            }
            assert_eq!(buf.as_ptr() as usize, ptr0, "recv buffer reallocated");
            buf[0] as usize
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn serial_sendrecv_into_self_wrap() {
        // P = 1 periodic wrap: the message comes straight back, reusing
        // the buffer's allocation.
        let mut comm = SerialComm::new();
        let mut buf: Vec<u8> = Vec::with_capacity(8);
        let ptr0 = buf.as_ptr() as usize;
        comm.sendrecv_bytes_into(0, 3, &[1, 2, 3], 0, 3, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        comm.sendrecv_bytes_into(0, 3, &[9], 0, 3, &mut buf);
        assert_eq!(buf, [9]);
        assert_eq!(buf.as_ptr() as usize, ptr0, "recv buffer reallocated");
    }

    #[test]
    fn recv_bytes_into_matches_recv_bytes() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 5, &[1, 2, 3]);
                comm.send_bytes(1, 5, &[4, 5]);
                Vec::new()
            } else {
                let a = comm.recv_bytes(0, 5);
                let mut b = Vec::new();
                comm.recv_bytes_into(0, 5, &mut b);
                vec![a, b]
            }
        });
        assert_eq!(results[1], vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn collectives_compose_repeatedly() {
        // Back-to-back collectives must not cross-talk.
        let results = run_threads(4, |comm| {
            let mut total = 0.0;
            for i in 0..10 {
                let s = comm.allreduce_f64(&[i as f64], ReduceOp::Sum)[0];
                comm.barrier();
                total += s;
            }
            total
        });
        let expect: f64 = (0..10).map(|i| (i * 4) as f64).sum();
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn stats_count_messages() {
        let results = run_threads(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 1, &[0; 100]);
            } else {
                comm.recv_bytes(0, 1);
            }
            comm.stats()
        });
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[0].bytes_sent, 100);
        assert_eq!(results[0].messages_recv, 0);
        assert_eq!(results[0].max_message_bytes, 100);
        assert_eq!(results[1].messages_sent, 0);
        assert_eq!(results[1].messages_recv, 1);
        assert_eq!(results[1].bytes_recv, 100);
        assert_eq!(results[1].max_message_bytes, 100);
        assert!(results[1].recv_wait_seconds >= 0.0);
        assert!(results[1].recv_wait_seconds <= results[1].comm_seconds);
    }

    #[test]
    fn comm_fraction_and_merge() {
        let a = CommStats {
            comm_seconds: 1.0,
            compute_seconds: 3.0,
            max_message_bytes: 10,
            ..Default::default()
        };
        let b = CommStats {
            comm_seconds: 1.0,
            compute_seconds: 0.0,
            max_message_bytes: 64,
            ..Default::default()
        };
        assert_eq!(a.comm_fraction(), 0.25);
        assert_eq!(CommStats::default().comm_fraction(), 0.0);
        let m = a.merged(&b);
        assert_eq!(m.comm_seconds, 2.0);
        assert_eq!(m.compute_seconds, 3.0);
        assert_eq!(m.max_message_bytes, 64);
        assert_eq!(m.comm_fraction(), 0.4);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn user_tags_in_collective_space_rejected() {
        let mut c = SerialComm::new();
        c.send_bytes(0, COLLECTIVE_TAG_BASE, &[]);
    }
}
