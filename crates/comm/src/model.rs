//! The simulated massively parallel computer: virtual clocks over a 2-D
//! mesh network cost model.
//!
//! Rank programs still execute concurrently on host threads, but *time* is
//! entirely virtual: computation advances a rank's clock only through
//! explicit [`Communicator::compute`] charges, and every message carries
//! its sender's departure timestamp so the receiver can advance to the
//! modeled arrival time. Because receives name their `(source, tag)` and
//! per-pair message order is FIFO, the virtual timeline of a fixed program
//! is **deterministic** — independent of host scheduling and host speed.
//! That is what lets a laptop regenerate the P = 1…1024 scaling tables of
//! a 1993 mesh multicomputer with reproducible numbers.

use crate::mailbox::{Mailbox, Msg};
use crate::{CommStats, Communicator, COLLECTIVE_TAG_BASE};
use qmc_lattice::ProcGrid;
use std::sync::Arc;
use std::time::Duration;

/// Cost model of one node + the interconnect of the simulated machine.
///
/// Message time from rank `a` to rank `b` with `n` payload bytes:
///
/// `t = send_overhead (on a) + per_hop·hops(a,b) + per_byte·n +
///    recv_overhead (on b)`
///
/// where `hops` is the Manhattan distance on the periodic mesh — XY
/// routing, as on the Touchstone Delta.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Seconds per abstract compute unit (one "flop-equivalent").
    pub flop_seconds: f64,
    /// Sender-side message initiation cost (seconds).
    pub send_overhead: f64,
    /// Receiver-side completion cost (seconds).
    pub recv_overhead: f64,
    /// Transfer time per payload byte (inverse bandwidth, seconds).
    pub per_byte: f64,
    /// Per-hop routing latency on the mesh (seconds).
    pub per_hop: f64,
    /// Mesh shape used for hop counting.
    pub mesh: ProcGrid,
}

impl MachineModel {
    /// A 1993 mesh multicomputer of `p` nodes (Intel Touchstone
    /// Delta class): ~25 Mflop/s nodes, ~75 µs message latency split
    /// between the two endpoints, ~22 MB/s channel bandwidth, sub-µs
    /// per-hop routing.
    pub fn mesh_1993(p: usize) -> Self {
        Self {
            flop_seconds: 40e-9,
            send_overhead: 40e-6,
            recv_overhead: 35e-6,
            per_byte: 45e-9,
            per_hop: 0.5e-6,
            mesh: ProcGrid::nearly_square(p),
        }
    }

    /// An idealized zero-latency machine (useful to isolate algorithmic
    /// load imbalance from network cost in ablation benches).
    pub fn ideal(p: usize) -> Self {
        Self {
            flop_seconds: 40e-9,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            per_byte: 0.0,
            per_hop: 0.0,
            mesh: ProcGrid::nearly_square(p),
        }
    }

    /// In-flight network time for `bytes` from `src` to `dst` (excludes
    /// endpoint overheads).
    pub fn wire_time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.per_hop * self.mesh.hops(src, dst) as f64 + self.per_byte * bytes as f64
    }
}

/// A rank of the simulated machine.
pub struct ModelComm {
    rank: usize,
    size: usize,
    boxes: Arc<Vec<Mailbox>>,
    model: Arc<MachineModel>,
    clock: f64,
    stats: CommStats,
    coll_seq: u32,
    timeout: Duration,
}

impl ModelComm {
    fn raw_send(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(dest < self.size, "dest rank {dest} out of range");
        self.clock += self.model.send_overhead;
        self.stats.comm_seconds += self.model.send_overhead;
        self.stats.note_sent(data.len());
        self.boxes[dest].put(
            self.rank,
            tag,
            Msg {
                bytes: data.to_vec(),
                depart: self.clock,
            },
        );
    }

    fn raw_recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let msg = self.boxes[self.rank].take(self.rank, src, tag, self.timeout);
        let arrival = msg.depart + self.model.wire_time(src, self.rank, msg.bytes.len());
        let wait = (arrival - self.clock).max(0.0);
        self.clock = self.clock.max(arrival) + self.model.recv_overhead;
        self.stats.comm_seconds += wait + self.model.recv_overhead;
        // Wait is *virtual* idle time: how long this rank's clock sat
        // behind the modeled arrival, not host blocking time.
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        msg.bytes
    }

    fn raw_recv_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        let msg = self.raw_recv(src, tag);
        buf.clear();
        buf.extend_from_slice(&msg);
    }
}

impl Communicator for ModelComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} is reserved for collectives"
        );
        self.raw_send(dest, tag, data);
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv(src, tag)
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        // Host-time bounded wait; on success the virtual clock advances
        // exactly as in `raw_recv`, so a successfully retried receive
        // costs the same modeled time as an untimed one.
        let msg = self.boxes[self.rank].try_take(src, tag, timeout)?;
        let arrival = msg.depart + self.model.wire_time(src, self.rank, msg.bytes.len());
        let wait = (arrival - self.clock).max(0.0);
        self.clock = self.clock.max(arrival) + self.model.recv_overhead;
        self.stats.comm_seconds += wait + self.model.recv_overhead;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        Some(msg.bytes)
    }

    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv_into(src, tag, buf);
    }

    fn compute(&mut self, units: f64) {
        let dt = units * self.model.flop_seconds;
        self.clock += dt;
        self.stats.compute_seconds += dt;
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_collective_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.raw_send(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.raw_recv(src, tag)
    }
}

/// Per-rank outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct ModelReport<T> {
    /// The rank function's return value.
    pub result: T,
    /// Final virtual clock — the modeled execution time of this rank.
    pub virtual_seconds: f64,
    /// Communication/computation breakdown.
    pub stats: CommStats,
}

/// Execute an SPMD program on the simulated machine; returns one
/// [`ModelReport`] per rank (indexed by rank).
///
/// The modeled wall time of the whole job is
/// `reports.iter().map(|r| r.virtual_seconds).fold(0.0, f64::max)`.
pub fn run_model<T, F>(nranks: usize, model: MachineModel, f: F) -> Vec<ModelReport<T>>
where
    T: Send,
    F: Fn(&mut ModelComm) -> T + Send + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    assert!(
        model.mesh.size() >= nranks,
        "mesh {}×{} too small for {nranks} ranks",
        model.mesh.px(),
        model.mesh.py()
    );
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
    let model = Arc::new(model);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let boxes = boxes.clone();
            let model = model.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut comm = ModelComm {
                    rank,
                    size: nranks,
                    boxes,
                    model,
                    clock: 0.0,
                    stats: CommStats::default(),
                    coll_seq: 0,
                    timeout: Duration::from_secs(300),
                };
                let result = f(&mut comm);
                ModelReport {
                    result,
                    virtual_seconds: comm.clock,
                    stats: comm.stats,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Modeled job time: the maximum rank clock.
pub fn job_seconds<T>(reports: &[ModelReport<T>]) -> f64 {
    reports
        .iter()
        .map(|r| r.virtual_seconds)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn compute_advances_clock_deterministically() {
        let reports = run_model(1, MachineModel::mesh_1993(1), |c| {
            c.compute(1e6);
            c.now()
        });
        assert!((reports[0].result - 1e6 * 40e-9).abs() < 1e-12);
        assert_eq!(reports[0].virtual_seconds, reports[0].result);
    }

    #[test]
    fn message_time_matches_model() {
        let model = MachineModel::mesh_1993(2);
        let expected = model.send_overhead + model.wire_time(0, 1, 1000) + model.recv_overhead;
        let reports = run_model(2, model, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0u8; 1000]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.now()
        });
        assert!(
            (reports[1].result - expected).abs() < 1e-12,
            "got {}, expect {expected}",
            reports[1].result
        );
    }

    #[test]
    fn receiver_later_than_arrival_does_not_wait() {
        // If the receiver has computed past the arrival time, recv costs
        // only the receive overhead.
        let model = MachineModel::mesh_1993(2);
        let late = 1.0; // a full virtual second of compute
        let reports = run_model(2, model.clone(), move |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0u8; 8]);
            } else {
                c.compute(late / 40e-9);
                c.recv_bytes(0, 1);
            }
            c.now()
        });
        let expect = late + model.recv_overhead;
        assert!((reports[1].result - expect).abs() < 1e-9);
    }

    #[test]
    fn virtual_time_is_scheduling_independent() {
        // Run the same program several times; virtual clocks must be
        // bit-identical even though host interleavings differ.
        let run = || {
            let reports = run_model(4, MachineModel::mesh_1993(4), |c| {
                let v = [c.rank() as f64];
                let s = c.allreduce_f64(&v, ReduceOp::Sum)[0];
                c.compute(1000.0 * (c.rank() + 1) as f64);
                c.barrier();
                s
            });
            reports
                .iter()
                .map(|r| r.virtual_seconds.to_bits())
                .collect::<Vec<_>>()
        };
        let a = run();
        for _ in 0..5 {
            assert_eq!(run(), a);
        }
    }

    #[test]
    fn ideal_machine_messages_cost_nothing() {
        let reports = run_model(2, MachineModel::ideal(2), |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0u8; 1 << 20]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.now()
        });
        assert_eq!(reports[1].result, 0.0);
    }

    #[test]
    fn farther_ranks_cost_more_hops() {
        let model = MachineModel::mesh_1993(16); // 4×4 mesh
        let t_near = {
            let r = run_model(16, model.clone(), |c| {
                if c.rank() == 0 {
                    c.send_bytes(1, 1, &[0]);
                } else if c.rank() == 1 {
                    c.recv_bytes(0, 1);
                }
                c.now()
            });
            r[1].virtual_seconds
        };
        let t_far = {
            let r = run_model(16, model, |c| {
                if c.rank() == 0 {
                    c.send_bytes(10, 1, &[0]); // (2,2) on the mesh: 4 hops
                } else if c.rank() == 10 {
                    c.recv_bytes(0, 1);
                }
                c.now()
            });
            r[10].virtual_seconds
        };
        assert!(t_far > t_near, "far {t_far} vs near {t_near}");
    }

    #[test]
    fn comm_fraction_accounted() {
        let reports = run_model(2, MachineModel::mesh_1993(2), |c| {
            if c.rank() == 0 {
                c.compute(1e5);
                c.send_bytes(1, 1, &[0; 64]);
            } else {
                c.recv_bytes(0, 1);
                c.compute(1e5);
            }
        });
        for r in &reports {
            let total = r.stats.comm_seconds + r.stats.compute_seconds;
            assert!(
                (total - r.virtual_seconds).abs() < 1e-12,
                "clock {} != comm {} + compute {}",
                r.virtual_seconds,
                r.stats.comm_seconds,
                r.stats.compute_seconds
            );
        }
    }

    // Clock semantics: ModelComm's now() is the *virtual* clock — it
    // advances only through compute charges and modeled message latency,
    // never with host wall time (the wall-clock counterpart is pinned in
    // thread_world.rs).
    #[test]
    fn virtual_clock_ignores_wall_time() {
        let reports = run_model(1, MachineModel::mesh_1993(1), |c| {
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(c.now(), 0.0, "virtual clock moved with host wall time");
            c.compute(1000.0);
            c.now()
        });
        // Exactly units × flop_seconds — no host-time contamination.
        assert_eq!(reports[0].result, 1000.0 * 40e-9);
    }

    #[test]
    fn recv_wait_is_virtual_idle_time() {
        let model = MachineModel::mesh_1993(2);
        let expect_wait = model.send_overhead + model.wire_time(0, 1, 64);
        let reports = run_model(2, model, |c| {
            if c.rank() == 0 {
                c.send_bytes(1, 1, &[0; 64]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.stats()
        });
        let s = &reports[1].result;
        assert!(
            (s.recv_wait_seconds - expect_wait).abs() < 1e-12,
            "wait {} != modeled idle {expect_wait}",
            s.recv_wait_seconds
        );
        assert!(s.recv_wait_seconds <= s.comm_seconds);
        assert_eq!(s.messages_recv, 1);
        assert_eq!(s.bytes_recv, 64);
        assert_eq!(s.max_message_bytes, 64);
    }

    #[test]
    fn job_seconds_is_max_over_ranks() {
        let reports = run_model(3, MachineModel::ideal(3), |c| {
            c.compute(((c.rank() + 1) * 1000) as f64);
        });
        let t = job_seconds(&reports);
        assert!((t - 3000.0 * 40e-9).abs() < 1e-15);
    }
}
