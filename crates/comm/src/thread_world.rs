//! Thread-backed ranks: real parallelism on the host machine.

use crate::deadlock::{diagnose, Poison};
use crate::mailbox::{Mailbox, Msg};
use crate::{CommStats, Communicator, COLLECTIVE_TAG_BASE};
use std::sync::Arc;
use std::time::{Duration, Instant}; // lint: allow(wall-clock) — receive timeouts need host time

/// How long a blocked receive sleeps between deadlock-detector passes.
/// Detection latency is a couple of slices — well under the 1 s budget —
/// while the wake-ups cost a blocked rank ~40 lock acquisitions/second.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// A communicator whose ranks are OS threads on the host.
///
/// Obtained inside [`run_threads`]; all correctness tests and the
/// real-speedup benchmarks use this back-end.
///
/// Blocked receives are watched by a runtime deadlock detector: a cycle
/// of mutually waiting ranks is reported as a panic naming the exact
/// wait-for cycle (e.g. `rank 0 waits on rank 1 (tag 0x7) -> rank 1
/// waits on rank 0 (tag 0x7)`) within a few wait slices, instead of
/// hanging the suite until the receive timeout.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    boxes: Arc<Vec<Mailbox>>,
    poison: Arc<Poison>,
    start: Instant,
    stats: CommStats,
    coll_seq: u32,
    timeout: Duration,
    incarnation: u32,
}

impl ThreadComm {
    fn new(
        rank: usize,
        size: usize,
        boxes: Arc<Vec<Mailbox>>,
        poison: Arc<Poison>,
        timeout: Duration,
        incarnation: u32,
    ) -> Self {
        Self {
            rank,
            size,
            boxes,
            poison,
            start: Instant::now(), // lint: allow(wall-clock)
            stats: CommStats::default(),
            coll_seq: 0,
            timeout,
            incarnation,
        }
    }

    /// Which elastic round this world is on: 0 for the initial launch,
    /// +1 for every in-place respawn after a rank death (see
    /// [`run_threads_elastic`]). Fresh per-round communicators also mean
    /// fresh collective sequence numbers and per-channel FIFO queues, so
    /// tracing and deadlock detection stay coherent across respawns.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    fn raw_send(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(dest < self.size, "dest rank {dest} out of range");
        self.stats.note_sent(data.len());
        self.boxes[dest].put(
            self.rank,
            tag,
            Msg {
                bytes: data.to_vec(),
                depart: 0.0,
            },
        );
    }

    /// Blocking receive with deadlock detection.
    ///
    /// Fast path: the message is already queued and `register_waiting`
    /// hands it over without ever publishing a `Waiting` state — zero
    /// extra cost for the common case the benchmarks measure. Slow path:
    /// the rank is registered as waiting and sleeps in bounded slices;
    /// each wake re-checks the queue, then the world poison, then walks
    /// the wait-for graph twice (epoch-stable equality is the proof —
    /// see `deadlock.rs`), then the overall receive timeout.
    fn recv_checked(&mut self, src: usize, tag: u32) -> Msg {
        let me = self.rank;
        if let Some(msg) = self.boxes[me].register_waiting(src, tag) {
            return msg;
        }
        // lint: allow(wall-clock) — receive timeouts need host time
        let deadline = Instant::now() + self.timeout;
        loop {
            if let Some(msg) = self.boxes[me].take_slice(src, tag, WAIT_SLICE) {
                return msg;
            }
            if let Some(msg) = self.poison.get() {
                self.boxes[me].set_running();
                panic!("{msg}");
            }
            if let Some(first) = diagnose(&self.boxes, me) {
                // Not yet proof: the walk is not atomic. A second walk
                // returning the *identical* diagnosis (same epochs) is —
                // every rank on it was continuously blocked in between.
                if diagnose(&self.boxes, me).as_ref() == Some(&first) {
                    let msg = first.render();
                    self.poison.set(&msg);
                    self.boxes[me].set_running();
                    panic!("{msg}");
                }
            }
            // lint: allow(wall-clock)
            if Instant::now() >= deadline {
                let msg = format!(
                    "rank {me}: recv(src={src}, tag={tag:#x}) timed out after {:?} — \
                     deadlock or mismatched send/recv",
                    self.timeout
                );
                // Fail the *world*, not just this rank: peers blocked on
                // other channels pick the poison up within a wait slice
                // instead of each riding out its own full timeout.
                self.poison.set(&msg);
                self.boxes[me].set_running();
                panic!("{msg}");
            }
        }
    }

    fn raw_recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.recv_checked(src, tag);
        // The whole blocked receive is time spent waiting on the sender.
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        msg.bytes
    }

    fn raw_recv_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.recv_checked(src, tag);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        buf.clear();
        buf.extend_from_slice(&msg.bytes);
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} is reserved for collectives"
        );
        self.raw_send(dest, tag, data);
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv(src, tag)
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.boxes[self.rank].try_take(src, tag, timeout);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        let msg = msg?;
        self.stats.note_received(msg.bytes.len());
        Some(msg.bytes)
    }

    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv_into(src, tag, buf);
    }

    fn compute(&mut self, units: f64) {
        // Real time passes on the host; just account for it.
        self.stats.compute_seconds += units;
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_collective_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.raw_send(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.raw_recv(src, tag)
    }
}

/// Marks the rank `Done` in its mailbox when the rank closure exits —
/// by return or by unwind — so peers blocked on it get a "dead peer"
/// diagnosis instead of waiting out the receive timeout.
struct DoneGuard {
    boxes: Arc<Vec<Mailbox>>,
    rank: usize,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.boxes[self.rank].set_done(std::thread::panicking());
    }
}

/// Run an SPMD function on `nranks` thread-backed ranks and collect each
/// rank's return value (indexed by rank).
///
/// Panics in any rank propagate with their original payload (the scope
/// joins all threads first), so a deadlock diagnosis or an assertion
/// inside one rank fails the whole run — the behaviour tests want.
pub fn run_threads<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    let timeout = Duration::from_secs(60);
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
    let poison = Arc::new(Poison::new());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let boxes = boxes.clone();
            let poison = poison.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let _done = DoneGuard {
                    boxes: boxes.clone(),
                    rank,
                };
                let mut comm = ThreadComm::new(rank, nranks, boxes, poison, timeout, 0);
                f(&mut comm)
            }));
        }
        // Join everyone, then re-raise the first panic with its original
        // payload so callers (and #[should_panic] tests) see the rank's
        // own message, not a generic join error.
        let mut results = Vec::with_capacity(nranks);
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    })
}

/// A completed elastic run: per-rank results plus which mailbox slots
/// had to be respawned along the way (in death order; empty means the
/// run never lost a rank).
#[derive(Debug)]
pub struct ElasticRun<T> {
    /// Each rank's return value from the final (successful) round,
    /// indexed by rank.
    pub results: Vec<T>,
    /// Rank slot respawned before each retry round, in death order.
    pub respawned: Vec<usize>,
}

/// Why an elastic run gave up.
pub enum ElasticError {
    /// A rank died after the respawn budget was spent. `payload` is the
    /// fatal rank's original panic payload.
    Exhausted {
        /// The rank whose death exhausted the budget.
        dead_rank: usize,
        /// Slots respawned before giving up, in death order.
        respawned: Vec<usize>,
        /// The fatal rank's panic payload, for re-raising.
        payload: Box<dyn std::any::Any + Send>,
    },
    /// Some ranks neither returned nor panicked within the stall
    /// backstop; their threads were poisoned and abandoned.
    Stalled {
        /// Ranks that never finished.
        unfinished: Vec<usize>,
        /// Human-readable report (also the poison message).
        message: String,
    },
}

impl std::fmt::Debug for ElasticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElasticError::Exhausted {
                dead_rank,
                respawned,
                ..
            } => f
                .debug_struct("Exhausted")
                .field("dead_rank", dead_rank)
                .field("respawned", respawned)
                .finish_non_exhaustive(),
            ElasticError::Stalled {
                unfinished,
                message,
            } => f
                .debug_struct("Stalled")
                .field("unfinished", unfinished)
                .field("message", message)
                .finish(),
        }
    }
}

/// One round's verdict, as seen by the supervisor.
enum RoundOutcome<T> {
    /// Every rank returned normally; results indexed by rank.
    Done(Vec<T>),
    /// At least one rank panicked (all threads did exit).
    Died {
        dead_rank: usize,
        payload: Box<dyn std::any::Any + Send>,
    },
    /// Some ranks never reported back within the stall backstop.
    Stalled {
        unfinished: Vec<usize>,
        message: String,
    },
}

/// Spawn one round of detached rank threads and collect all verdicts.
///
/// Every thread reports exactly once over the channel — result or
/// caught panic payload — *after* its `DoneGuard` has marked the
/// mailbox `Done`, so by the time the supervisor has `nranks` reports
/// no rank can still touch the mailboxes and a respawn reset is safe.
/// Threads are detached: if one stalls past the backstop the supervisor
/// poisons the world (so blocked survivors fail fast), drains briefly,
/// and abandons whatever still runs rather than hanging the caller.
fn run_round<T, F>(
    nranks: usize,
    timeout: Duration,
    incarnation: u32,
    boxes: &Arc<Vec<Mailbox>>,
    poison: &Arc<Poison>,
    f: &Arc<F>,
) -> RoundOutcome<T>
where
    T: Send + 'static,
    F: Fn(&mut ThreadComm) -> T + Send + Sync + 'static,
{
    type Verdict<T> = (usize, Result<T, Box<dyn std::any::Any + Send>>);
    let (tx, rx) = std::sync::mpsc::channel::<Verdict<T>>();
    for rank in 0..nranks {
        let boxes = boxes.clone();
        let poison = poison.clone();
        let f = f.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // The guard lives *inside* the catch so its Drop (which
                // records Done{panicked}) runs before the verdict is
                // sent — the supervisor never resets a mailbox whose
                // owner hasn't published its exit yet.
                let _done = DoneGuard {
                    boxes: boxes.clone(),
                    rank,
                };
                let mut comm = ThreadComm::new(rank, nranks, boxes, poison, timeout, incarnation);
                f(&mut comm)
            }));
            let _ = tx.send((rank, out));
        });
    }
    drop(tx);

    // Stall backstop: every live rank either finishes or hits its own
    // receive timeout by `timeout`; the grace covers compute time and
    // slow-but-live senders (which may legitimately outlast `timeout`,
    // see `slow_sender_past_timeout_panics`).
    let grace = (timeout * 2).max(Duration::from_secs(1));
    // lint: allow(wall-clock) — stall backstop needs host time
    let stall_deadline = Instant::now() + timeout + grace;
    let mut slots: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    let mut finished = vec![false; nranks];
    let mut got = 0usize;
    let mut first_death: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    let collect =
        |msg: Verdict<T>,
         slots: &mut Vec<Option<T>>,
         finished: &mut Vec<bool>,
         first_death: &mut Option<(usize, Box<dyn std::any::Any + Send>)>| {
            let (rank, out) = msg;
            finished[rank] = true;
            match out {
                Ok(v) => slots[rank] = Some(v),
                Err(payload) => {
                    if first_death.is_none() {
                        *first_death = Some((rank, payload));
                    }
                }
            }
        };
    while got < nranks {
        // lint: allow(wall-clock)
        let remaining = stall_deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        match rx.recv_timeout(remaining) {
            Ok(msg) => {
                collect(msg, &mut slots, &mut finished, &mut first_death);
                got += 1;
            }
            Err(_) => break,
        }
    }
    if got < nranks {
        let unfinished: Vec<usize> = (0..nranks).filter(|&r| !finished[r]).collect();
        let message = format!(
            "run_threads: rank(s) {unfinished:?} neither returned nor panicked within \
             {timeout:?} + {grace:?} grace — poisoning the world and abandoning their threads"
        );
        poison.set(&message);
        // Short drain: poisoned stragglers blocked in a receive notice
        // within a wait slice; give them a few to report in.
        // lint: allow(wall-clock)
        let drain_deadline = Instant::now() + WAIT_SLICE * 20;
        while got < nranks {
            // lint: allow(wall-clock)
            let remaining = drain_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match rx.recv_timeout(remaining) {
                Ok(msg) => {
                    collect(msg, &mut slots, &mut finished, &mut first_death);
                    got += 1;
                }
                Err(_) => break,
            }
        }
        if got < nranks {
            let unfinished: Vec<usize> = (0..nranks).filter(|&r| !finished[r]).collect();
            return RoundOutcome::Stalled {
                unfinished,
                message,
            };
        }
    }
    match first_death {
        Some((dead_rank, payload)) => RoundOutcome::Died { dead_rank, payload },
        None => RoundOutcome::Done(
            slots
                .into_iter()
                .map(|s| s.expect("every finished rank left a result"))
                .collect(),
        ),
    }
}

/// [`run_threads`] with an explicit receive-timeout (the backstop for
/// blocked receives the deadlock detector cannot prove stuck, e.g. a
/// peer spinning forever without sending).
///
/// Unlike the plain scope-based [`run_threads`], rank threads here are
/// detached and supervised: a rank that neither returns nor panics
/// within `timeout` plus a grace period no longer hangs the caller
/// while silently holding live mailbox `Arc`s — the world is poisoned
/// (so blocked survivors fail fast) and the run panics naming the ranks
/// that never finished.
pub fn run_threads_with_timeout<T, F>(nranks: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&mut ThreadComm) -> T + Send + Sync + 'static,
{
    match run_threads_elastic(nranks, timeout, 0, f) {
        Ok(run) => run.results,
        Err(ElasticError::Exhausted { payload, .. }) => std::panic::resume_unwind(payload),
        Err(ElasticError::Stalled { message, .. }) => panic!("{message}"),
    }
}

/// Run an SPMD function on `nranks` thread-backed ranks with in-place
/// rank respawn: when a rank dies, the supervisor waits for every
/// thread of the round to exit, resets all mailbox slots and the world
/// poison, and relaunches the full world with `incarnation + 1` — up to
/// `max_respawns` times. The rank closure is responsible for recovering
/// its state on re-entry (the PT driver resumes from the latest
/// coordinated checkpoint generation; survivors roll back to the same
/// boundary, so the respawned world is bit-identical to one that never
/// died).
///
/// Respawning the *whole* world rather than just the dead slot is what
/// makes the rejoin protocol race-free: there is no barrier between a
/// half-old, half-new world because no such world ever exists — the
/// model in `qmc_verify::model::respawn` checks exactly this design
/// against its mutants.
pub fn run_threads_elastic<T, F>(
    nranks: usize,
    timeout: Duration,
    max_respawns: usize,
    f: F,
) -> Result<ElasticRun<T>, ElasticError>
where
    T: Send + 'static,
    F: Fn(&mut ThreadComm) -> T + Send + Sync + 'static,
{
    assert!(nranks >= 1, "need at least one rank");
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
    let poison = Arc::new(Poison::new());
    let f = Arc::new(f);
    let mut respawned = Vec::new();
    loop {
        let incarnation = respawned.len() as u32;
        match run_round(nranks, timeout, incarnation, &boxes, &poison, &f) {
            RoundOutcome::Done(results) => {
                return Ok(ElasticRun { results, respawned });
            }
            RoundOutcome::Stalled {
                unfinished,
                message,
            } => {
                // Never respawn over a stall: abandoned threads may
                // still hold mailbox Arcs, so a reset could race them.
                return Err(ElasticError::Stalled {
                    unfinished,
                    message,
                });
            }
            RoundOutcome::Died { dead_rank, payload } => {
                if respawned.len() >= max_respawns {
                    return Err(ElasticError::Exhausted {
                        dead_rank,
                        respawned,
                        payload,
                    });
                }
                respawned.push(dead_rank);
                // Every thread of the failed round has exited (the
                // round verdict only lands once all n reports are in),
                // so resetting the shared state cannot race a live
                // rank. Clear residue messages, wait states, and the
                // poison; the epoch bump keeps stale diagnoses from
                // ever comparing equal.
                for mb in boxes.iter() {
                    mb.reset_for_respawn();
                }
                poison.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = run_threads(4, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_runs() {
        let out = run_threads(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn message_order_preserved_between_pair() {
        let out = run_threads(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "deadlock detected: rank 0 waits on rank 1 (tag 0x1) -> \
                               rank 1 waits on rank 0 (tag 0x1)")]
    fn crossed_recvs_panic_with_the_cycle() {
        // Both ranks receive first — classic deadlock; the detector names
        // the cycle long before the (generous) receive timeout.
        run_threads_with_timeout(2, Duration::from_secs(30), |c| {
            let other = 1 - c.rank();
            let _ = c.recv_bytes(other, 1);
        });
    }

    #[test]
    #[should_panic(expected = "dest rank 5 out of range")]
    fn send_to_invalid_rank_panics() {
        run_threads(1, |c| c.send_bytes(5, 1, &[]));
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn slow_sender_past_timeout_panics() {
        // Rank 1 is alive (Running) the whole time, so the detector can
        // prove nothing; the receive-timeout backstop fires instead.
        run_threads_with_timeout(2, Duration::from_millis(60), |c| {
            if c.rank() == 0 {
                let _ = c.recv_bytes(1, 2);
            } else {
                std::thread::sleep(Duration::from_millis(400));
                c.send_bytes(0, 2, &[1]);
            }
        });
    }

    #[test]
    fn stalled_rank_is_reported_and_does_not_hang_the_run() {
        // Rank 1 computes forever without touching the comm layer: the
        // deadlock detector sees it Running and the receive timeout
        // never fires for it. Pre-fix this leaked the thread silently
        // and rank 0's timeout was the only (misleading) signal; now
        // the supervisor poisons the world and names the stalled rank.
        use std::sync::atomic::{AtomicBool, Ordering};
        static STOP: AtomicBool = AtomicBool::new(false);
        let err = std::panic::catch_unwind(|| {
            run_threads_with_timeout(2, Duration::from_millis(50), |c| {
                if c.rank() == 1 {
                    while !STOP.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            });
        })
        .expect_err("a stalled rank must fail the run");
        STOP.store(true, Ordering::Relaxed); // release the leaked thread
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("stall panic carries a String payload");
        assert!(
            msg.contains("rank(s) [1]") && msg.contains("neither returned nor panicked"),
            "stall report must name the unfinished rank: {msg}"
        );
    }

    #[test]
    fn timeout_poisons_the_world_so_survivors_fail_fast() {
        // Rank 0 times out on a receive after 60 ms; rank 1 is blocked
        // on a receive of its own with nothing in flight. Pre-fix rank 1
        // had to ride out its own full timeout; now rank 0's timeout
        // poisons the world and the whole run ends quickly.
        let t0 = Instant::now();
        let err = std::panic::catch_unwind(|| {
            run_threads_with_timeout(2, Duration::from_millis(60), |c| {
                if c.rank() == 0 {
                    let _ = c.recv_bytes(1, 2);
                } else {
                    // Keep rank 1 Running past rank 0's timeout so the
                    // deadlock detector cannot conclude first, then
                    // block on a receive that only poison can end.
                    std::thread::sleep(Duration::from_millis(120));
                    let _ = c.recv_bytes(0, 3);
                }
            });
        })
        .expect_err("both ranks must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("timed out"), "unexpected payload: {msg}");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "survivor did not fail fast: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn elastic_respawn_restarts_the_world_and_reports_the_slot() {
        // Rank 1 dies on its first incarnation, succeeds on the second;
        // the respawned world exchanges cleanly over the reset mailboxes.
        let run = run_threads_elastic(2, Duration::from_secs(5), 1, |c| {
            if c.rank() == 1 && c.incarnation() == 0 {
                // Residue: a message rank 0 will never receive in this
                // round; the reset must drop it.
                c.send_bytes(0, 9, &[0xEE]);
                panic!("injected death on incarnation 0");
            }
            if c.rank() == 0 {
                c.send_bytes(1, 4, &[c.incarnation() as u8]);
                Vec::new()
            } else {
                c.recv_bytes(0, 4)
            }
        })
        .expect("one respawn is within budget");
        assert_eq!(run.respawned, vec![1]);
        assert_eq!(run.results[1], vec![1], "rank 1 sees the respawned round");
    }

    #[test]
    fn elastic_budget_zero_reraises_the_original_payload() {
        let err = std::panic::catch_unwind(|| {
            run_threads_elastic(2, Duration::from_secs(5), 0, |c| {
                if c.rank() == 1 {
                    panic!("fatal rank death");
                }
            })
        })
        .map(|r| {
            // No panic escaped: must be an Exhausted error instead.
            let e = r.expect_err("budget 0 cannot absorb a death");
            let ElasticError::Exhausted {
                dead_rank,
                respawned,
                ..
            } = e
            else {
                panic!("expected Exhausted, got {e:?}");
            };
            assert_eq!(dead_rank, 1);
            assert!(respawned.is_empty());
        });
        assert!(err.is_ok(), "run_threads_elastic itself must not panic");
    }

    #[test]
    fn now_is_monotone() {
        run_threads(1, |c| {
            let a = c.now();
            std::thread::sleep(Duration::from_millis(5));
            assert!(c.now() > a);
        });
    }

    // Clock semantics: ThreadComm's now() is the *wall* clock — compute()
    // charges are accounting only and never move it (the virtual-clock
    // counterpart is pinned in model.rs).
    #[test]
    fn wall_clock_ignores_compute_charges() {
        run_threads(1, |c| {
            let before = c.now();
            c.compute(1e9); // a gigaflop-equivalent of *accounting*
            let after = c.now();
            assert!(
                after - before < 1.0,
                "compute charge advanced the wall clock by {}s",
                after - before
            );
            assert_eq!(c.stats().compute_seconds, 1e9);
        });
    }

    #[test]
    fn recv_wait_measures_blocked_time() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(30));
                c.send_bytes(1, 1, &[7]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.stats()
        });
        // Rank 1 blocked for roughly the sender's sleep.
        assert!(
            results[1].recv_wait_seconds >= 0.01,
            "wait {} too short",
            results[1].recv_wait_seconds
        );
        assert!(results[1].recv_wait_seconds <= results[1].comm_seconds);
        assert_eq!(results[0].recv_wait_seconds, 0.0);
    }
}
