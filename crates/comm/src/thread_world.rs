//! Thread-backed ranks: real parallelism on the host machine.

use crate::deadlock::{diagnose, Poison};
use crate::mailbox::{Mailbox, Msg};
use crate::{CommStats, Communicator, COLLECTIVE_TAG_BASE};
use std::sync::Arc;
use std::time::{Duration, Instant}; // lint: allow(wall-clock) — receive timeouts need host time

/// How long a blocked receive sleeps between deadlock-detector passes.
/// Detection latency is a couple of slices — well under the 1 s budget —
/// while the wake-ups cost a blocked rank ~40 lock acquisitions/second.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// A communicator whose ranks are OS threads on the host.
///
/// Obtained inside [`run_threads`]; all correctness tests and the
/// real-speedup benchmarks use this back-end.
///
/// Blocked receives are watched by a runtime deadlock detector: a cycle
/// of mutually waiting ranks is reported as a panic naming the exact
/// wait-for cycle (e.g. `rank 0 waits on rank 1 (tag 0x7) -> rank 1
/// waits on rank 0 (tag 0x7)`) within a few wait slices, instead of
/// hanging the suite until the receive timeout.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    boxes: Arc<Vec<Mailbox>>,
    poison: Arc<Poison>,
    start: Instant,
    stats: CommStats,
    coll_seq: u32,
    timeout: Duration,
}

impl ThreadComm {
    fn new(
        rank: usize,
        size: usize,
        boxes: Arc<Vec<Mailbox>>,
        poison: Arc<Poison>,
        timeout: Duration,
    ) -> Self {
        Self {
            rank,
            size,
            boxes,
            poison,
            start: Instant::now(), // lint: allow(wall-clock)
            stats: CommStats::default(),
            coll_seq: 0,
            timeout,
        }
    }

    fn raw_send(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(dest < self.size, "dest rank {dest} out of range");
        self.stats.note_sent(data.len());
        self.boxes[dest].put(
            self.rank,
            tag,
            Msg {
                bytes: data.to_vec(),
                depart: 0.0,
            },
        );
    }

    /// Blocking receive with deadlock detection.
    ///
    /// Fast path: the message is already queued and `register_waiting`
    /// hands it over without ever publishing a `Waiting` state — zero
    /// extra cost for the common case the benchmarks measure. Slow path:
    /// the rank is registered as waiting and sleeps in bounded slices;
    /// each wake re-checks the queue, then the world poison, then walks
    /// the wait-for graph twice (epoch-stable equality is the proof —
    /// see `deadlock.rs`), then the overall receive timeout.
    fn recv_checked(&mut self, src: usize, tag: u32) -> Msg {
        let me = self.rank;
        if let Some(msg) = self.boxes[me].register_waiting(src, tag) {
            return msg;
        }
        // lint: allow(wall-clock) — receive timeouts need host time
        let deadline = Instant::now() + self.timeout;
        loop {
            if let Some(msg) = self.boxes[me].take_slice(src, tag, WAIT_SLICE) {
                return msg;
            }
            if let Some(msg) = self.poison.get() {
                self.boxes[me].set_running();
                panic!("{msg}");
            }
            if let Some(first) = diagnose(&self.boxes, me) {
                // Not yet proof: the walk is not atomic. A second walk
                // returning the *identical* diagnosis (same epochs) is —
                // every rank on it was continuously blocked in between.
                if diagnose(&self.boxes, me).as_ref() == Some(&first) {
                    let msg = first.render();
                    self.poison.set(&msg);
                    self.boxes[me].set_running();
                    panic!("{msg}");
                }
            }
            // lint: allow(wall-clock)
            if Instant::now() >= deadline {
                self.boxes[me].set_running();
                panic!(
                    "rank {me}: recv(src={src}, tag={tag:#x}) timed out after {:?} — \
                     deadlock or mismatched send/recv",
                    self.timeout
                );
            }
        }
    }

    fn raw_recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.recv_checked(src, tag);
        // The whole blocked receive is time spent waiting on the sender.
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        msg.bytes
    }

    fn raw_recv_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.recv_checked(src, tag);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        buf.clear();
        buf.extend_from_slice(&msg.bytes);
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} is reserved for collectives"
        );
        self.raw_send(dest, tag, data);
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv(src, tag)
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        let t0 = Instant::now(); // lint: allow(wall-clock)
        let msg = self.boxes[self.rank].try_take(src, tag, timeout);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        let msg = msg?;
        self.stats.note_received(msg.bytes.len());
        Some(msg.bytes)
    }

    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv_into(src, tag, buf);
    }

    fn compute(&mut self, units: f64) {
        // Real time passes on the host; just account for it.
        self.stats.compute_seconds += units;
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_collective_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.raw_send(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.raw_recv(src, tag)
    }
}

/// Marks the rank `Done` in its mailbox when the rank closure exits —
/// by return or by unwind — so peers blocked on it get a "dead peer"
/// diagnosis instead of waiting out the receive timeout.
struct DoneGuard {
    boxes: Arc<Vec<Mailbox>>,
    rank: usize,
}

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.boxes[self.rank].set_done(std::thread::panicking());
    }
}

/// Run an SPMD function on `nranks` thread-backed ranks and collect each
/// rank's return value (indexed by rank).
///
/// Panics in any rank propagate with their original payload (the scope
/// joins all threads first), so a deadlock diagnosis or an assertion
/// inside one rank fails the whole run — the behaviour tests want.
pub fn run_threads<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    run_threads_with_timeout(nranks, Duration::from_secs(60), f)
}

/// [`run_threads`] with an explicit receive-timeout (the backstop for
/// blocked receives the deadlock detector cannot prove stuck, e.g. a
/// peer spinning forever without sending).
pub fn run_threads_with_timeout<T, F>(nranks: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
    let poison = Arc::new(Poison::new());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let boxes = boxes.clone();
            let poison = poison.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let _done = DoneGuard {
                    boxes: boxes.clone(),
                    rank,
                };
                let mut comm = ThreadComm::new(rank, nranks, boxes, poison, timeout);
                f(&mut comm)
            }));
        }
        // Join everyone, then re-raise the first panic with its original
        // payload so callers (and #[should_panic] tests) see the rank's
        // own message, not a generic join error.
        let mut results = Vec::with_capacity(nranks);
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = run_threads(4, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_runs() {
        let out = run_threads(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn message_order_preserved_between_pair() {
        let out = run_threads(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "deadlock detected: rank 0 waits on rank 1 (tag 0x1) -> \
                               rank 1 waits on rank 0 (tag 0x1)")]
    fn crossed_recvs_panic_with_the_cycle() {
        // Both ranks receive first — classic deadlock; the detector names
        // the cycle long before the (generous) receive timeout.
        run_threads_with_timeout(2, Duration::from_secs(30), |c| {
            let other = 1 - c.rank();
            let _ = c.recv_bytes(other, 1);
        });
    }

    #[test]
    #[should_panic(expected = "dest rank 5 out of range")]
    fn send_to_invalid_rank_panics() {
        run_threads(1, |c| c.send_bytes(5, 1, &[]));
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn slow_sender_past_timeout_panics() {
        // Rank 1 is alive (Running) the whole time, so the detector can
        // prove nothing; the receive-timeout backstop fires instead.
        run_threads_with_timeout(2, Duration::from_millis(60), |c| {
            if c.rank() == 0 {
                let _ = c.recv_bytes(1, 2);
            } else {
                std::thread::sleep(Duration::from_millis(400));
                c.send_bytes(0, 2, &[1]);
            }
        });
    }

    #[test]
    fn now_is_monotone() {
        run_threads(1, |c| {
            let a = c.now();
            std::thread::sleep(Duration::from_millis(5));
            assert!(c.now() > a);
        });
    }

    // Clock semantics: ThreadComm's now() is the *wall* clock — compute()
    // charges are accounting only and never move it (the virtual-clock
    // counterpart is pinned in model.rs).
    #[test]
    fn wall_clock_ignores_compute_charges() {
        run_threads(1, |c| {
            let before = c.now();
            c.compute(1e9); // a gigaflop-equivalent of *accounting*
            let after = c.now();
            assert!(
                after - before < 1.0,
                "compute charge advanced the wall clock by {}s",
                after - before
            );
            assert_eq!(c.stats().compute_seconds, 1e9);
        });
    }

    #[test]
    fn recv_wait_measures_blocked_time() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(30));
                c.send_bytes(1, 1, &[7]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.stats()
        });
        // Rank 1 blocked for roughly the sender's sleep.
        assert!(
            results[1].recv_wait_seconds >= 0.01,
            "wait {} too short",
            results[1].recv_wait_seconds
        );
        assert!(results[1].recv_wait_seconds <= results[1].comm_seconds);
        assert_eq!(results[0].recv_wait_seconds, 0.0);
    }
}
