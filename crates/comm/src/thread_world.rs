//! Thread-backed ranks: real parallelism on the host machine.

use crate::mailbox::{Mailbox, Msg};
use crate::{CommStats, Communicator, COLLECTIVE_TAG_BASE};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A communicator whose ranks are OS threads on the host.
///
/// Obtained inside [`run_threads`]; all correctness tests and the
/// real-speedup benchmarks use this back-end.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    boxes: Arc<Vec<Mailbox>>,
    start: Instant,
    stats: CommStats,
    coll_seq: u32,
    timeout: Duration,
}

impl ThreadComm {
    fn new(rank: usize, size: usize, boxes: Arc<Vec<Mailbox>>, timeout: Duration) -> Self {
        Self {
            rank,
            size,
            boxes,
            start: Instant::now(),
            stats: CommStats::default(),
            coll_seq: 0,
            timeout,
        }
    }

    fn raw_send(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(dest < self.size, "dest rank {dest} out of range");
        self.stats.note_sent(data.len());
        self.boxes[dest].put(
            self.rank,
            tag,
            Msg {
                bytes: data.to_vec(),
                depart: 0.0,
            },
        );
    }

    fn raw_recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now();
        let msg = self.boxes[self.rank].take(self.rank, src, tag, self.timeout);
        // The whole mailbox take is time blocked waiting on the sender.
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        msg.bytes
    }

    fn raw_recv_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        assert!(
            src < self.size,
            "rank {me}: recv(src={src}, tag={tag:#x}): src out of range for size-{size} world",
            me = self.rank,
            size = self.size
        );
        let t0 = Instant::now();
        let msg = self.boxes[self.rank].take(self.rank, src, tag, self.timeout);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        self.stats.note_received(msg.bytes.len());
        buf.clear();
        buf.extend_from_slice(&msg.bytes);
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} is reserved for collectives"
        );
        self.raw_send(dest, tag, data);
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv(src, tag)
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        crate::check_recv_args(self.rank, self.size, src, tag);
        let t0 = Instant::now();
        let msg = self.boxes[self.rank].try_take(src, tag, timeout);
        let wait = t0.elapsed().as_secs_f64();
        self.stats.comm_seconds += wait;
        self.stats.recv_wait_seconds += wait;
        let msg = msg?;
        self.stats.note_received(msg.bytes.len());
        Some(msg.bytes)
    }

    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        crate::check_recv_args(self.rank, self.size, src, tag);
        self.raw_recv_into(src, tag, buf);
    }

    fn compute(&mut self, units: f64) {
        // Real time passes on the host; just account for it.
        self.stats.compute_seconds += units;
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_collective_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.raw_send(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.raw_recv(src, tag)
    }
}

/// Run an SPMD function on `nranks` thread-backed ranks and collect each
/// rank's return value (indexed by rank).
///
/// Panics in any rank propagate (the scope joins all threads first), so a
/// deadlock timeout or an assertion inside one rank fails the whole run —
/// the behaviour tests want.
pub fn run_threads<T, F>(nranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    run_threads_with_timeout(nranks, Duration::from_secs(60), f)
}

/// [`run_threads`] with an explicit receive-timeout (used by the deadlock
/// tests to fail fast).
pub fn run_threads_with_timeout<T, F>(nranks: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Send + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    let boxes: Arc<Vec<Mailbox>> = Arc::new((0..nranks).map(|_| Mailbox::new()).collect());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let boxes = boxes.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut comm = ThreadComm::new(rank, nranks, boxes, timeout);
                f(&mut comm)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = run_threads(4, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_runs() {
        let out = run_threads(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn message_order_preserved_between_pair() {
        let out = run_threads(2, |c| {
            if c.rank() == 0 {
                for i in 0..10u8 {
                    c.send_bytes(1, 3, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| c.recv_bytes(0, 3)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic]
    fn deadlock_detected_by_timeout() {
        // Both ranks receive first — classic deadlock; the 100 ms timeout
        // turns it into a panic.
        run_threads_with_timeout(2, Duration::from_millis(100), |c| {
            let other = 1 - c.rank();
            let _ = c.recv_bytes(other, 1);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn send_to_invalid_rank_panics() {
        run_threads(1, |c| c.send_bytes(5, 1, &[]));
    }

    #[test]
    fn now_is_monotone() {
        run_threads(1, |c| {
            let a = c.now();
            std::thread::sleep(Duration::from_millis(5));
            assert!(c.now() > a);
        });
    }

    // Clock semantics: ThreadComm's now() is the *wall* clock — compute()
    // charges are accounting only and never move it (the virtual-clock
    // counterpart is pinned in model.rs).
    #[test]
    fn wall_clock_ignores_compute_charges() {
        run_threads(1, |c| {
            let before = c.now();
            c.compute(1e9); // a gigaflop-equivalent of *accounting*
            let after = c.now();
            assert!(
                after - before < 1.0,
                "compute charge advanced the wall clock by {}s",
                after - before
            );
            assert_eq!(c.stats().compute_seconds, 1e9);
        });
    }

    #[test]
    fn recv_wait_measures_blocked_time() {
        let results = run_threads(2, |c| {
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(30));
                c.send_bytes(1, 1, &[7]);
            } else {
                c.recv_bytes(0, 1);
            }
            c.stats()
        });
        // Rank 1 blocked for roughly the sender's sleep.
        assert!(
            results[1].recv_wait_seconds >= 0.01,
            "wait {} too short",
            results[1].recv_wait_seconds
        );
        assert!(results[1].recv_wait_seconds <= results[1].comm_seconds);
        assert_eq!(results[0].recv_wait_seconds, 0.0);
    }
}
