//! Shared in-memory mailboxes: the "wires" of the simulated machine.
//!
//! Each mailbox also carries its owning rank's *wait state* under the
//! same mutex as the queues. That single-lock coupling is what makes the
//! runtime deadlock detector ([`crate::deadlock`]) sound: a sender that
//! deposits a matching message atomically flips the waiting owner back
//! to [`RankState::Running`], so any observer that reads a stable
//! `Waiting { epoch }` twice has proved the owner was continuously
//! blocked on an empty queue in between — there is no window where a
//! rank holds its message but still looks blocked.

use crate::deadlock::RankState;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A message in flight. `depart` is the sender's virtual clock at the
/// moment the message left (0.0 under the wall-clock back-end).
#[derive(Debug)]
pub(crate) struct Msg {
    pub bytes: Vec<u8>,
    pub depart: f64,
}

struct Inner {
    queues: HashMap<(usize, u32), VecDeque<Msg>>,
    state: RankState,
    epoch: u64,
}

/// One rank's incoming mailbox, keyed by `(source, tag)`, plus the
/// owning rank's wait state.
///
/// FIFO per key (message order between a fixed pair with a fixed tag is
/// preserved — the property the deterministic matching argument rests on).
pub(crate) struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                state: RankState::Running,
                epoch: 0,
            }),
            cond: Condvar::new(),
        }
    }
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a message from `src` with `tag`.
    ///
    /// If the owner is registered as waiting on exactly `(src, tag)` it
    /// is flipped back to `Running` under the same lock (see module
    /// docs for why the detector depends on this).
    pub fn put(&self, src: usize, tag: u32, msg: Msg) {
        let mut inner = self.lock();
        inner.queues.entry((src, tag)).or_default().push_back(msg);
        if let RankState::Waiting {
            src: ws, tag: wt, ..
        } = inner.state
        {
            if (ws, wt) == (src, tag) {
                inner.state = RankState::Running;
            }
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Block until a message from `src` with `tag` arrives.
    ///
    /// Panics after `timeout` — in a correct SPMD program a matching send
    /// always exists, so a timeout means deadlock (or a tag mismatch) and
    /// aborting with context beats hanging forever. The virtual-clock
    /// back-end uses this directly; `ThreadComm` instead goes through
    /// [`Mailbox::register_waiting`] + [`Mailbox::take_slice`] so the
    /// deadlock detector can watch the wait.
    pub fn take(&self, me: usize, src: usize, tag: u32, timeout: Duration) -> Msg {
        match self.try_take(src, tag, timeout) {
            Some(msg) => msg,
            None => panic!(
                "rank {me}: recv(src={src}, tag={tag:#x}) timed out after {timeout:?} — \
                 deadlock or mismatched send/recv"
            ),
        }
    }

    /// Like [`Mailbox::take`] but returns `None` on timeout instead of
    /// panicking — the primitive behind `recv_bytes_timeout`, where the
    /// caller (fault-tolerant retry loops) owns the give-up policy.
    pub fn try_take(&self, src: usize, tag: u32, timeout: Duration) -> Option<Msg> {
        // lint: allow(wall-clock) — receive timeouts need host time
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    return Some(msg);
                }
            }
            // lint: allow(wall-clock)
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _res) = self
                .cond
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Atomically: if a message for `(src, tag)` is queued, take it
    /// (staying `Running`); otherwise register the owner as waiting on
    /// `(src, tag)` with a fresh epoch and return `None`.
    ///
    /// The queue check and the registration share one critical section,
    /// so `Waiting` is only ever observable while the matching queue is
    /// empty.
    pub fn register_waiting(&self, src: usize, tag: u32) -> Option<Msg> {
        let mut inner = self.lock();
        if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
            if let Some(msg) = queue.pop_front() {
                return Some(msg);
            }
        }
        inner.epoch += 1;
        let epoch = inner.epoch;
        inner.state = RankState::Waiting { src, tag, epoch };
        None
    }

    /// One bounded wait slice for a registered waiter: take the message
    /// if it arrived (and ensure the state is back to `Running`), else
    /// return `None` after at most `slice`, leaving the registration in
    /// place so the detector keeps seeing the same epoch.
    pub fn take_slice(&self, src: usize, tag: u32, slice: Duration) -> Option<Msg> {
        // lint: allow(wall-clock) — receive timeouts need host time
        let deadline = Instant::now() + slice;
        let mut inner = self.lock();
        loop {
            if let Some(queue) = inner.queues.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    inner.state = RankState::Running;
                    return Some(msg);
                }
            }
            // lint: allow(wall-clock)
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _res) = self
                .cond
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Clear a registration without consuming a message (the waiter is
    /// giving up, e.g. to panic with context).
    pub fn set_running(&self) {
        self.lock().state = RankState::Running;
    }

    /// Mark the owning rank finished (`panicked` says how).
    pub fn set_done(&self, panicked: bool) {
        self.lock().state = RankState::Done { panicked };
    }

    /// Snapshot the owner's wait state (for the deadlock detector).
    pub fn wait_state(&self) -> RankState {
        self.lock().state
    }

    /// Reset the mailbox for an elastic respawn round: drop every
    /// undelivered message, return the owner to `Running`, and bump the
    /// epoch so a stale diagnosis from the dead round can never compare
    /// equal against the new one.
    ///
    /// Only the world supervisor may call this, and only after every
    /// rank thread of the failed round has exited — a live waiter would
    /// otherwise lose its registration.
    pub fn reset_for_respawn(&self) {
        let mut inner = self.lock();
        inner.queues.clear();
        inner.state = RankState::Running;
        inner.epoch += 1;
        drop(inner);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_take_roundtrip() {
        let mb = Mailbox::new();
        mb.put(
            3,
            7,
            Msg {
                bytes: vec![1, 2],
                depart: 0.5,
            },
        );
        let m = mb.take(0, 3, 7, Duration::from_secs(1));
        assert_eq!(m.bytes, vec![1, 2]);
        assert_eq!(m.depart, 0.5);
    }

    #[test]
    fn fifo_order_per_key() {
        let mb = Mailbox::new();
        for i in 0..5u8 {
            mb.put(
                0,
                1,
                Msg {
                    bytes: vec![i],
                    depart: 0.0,
                },
            );
        }
        for i in 0..5u8 {
            assert_eq!(mb.take(0, 0, 1, Duration::from_secs(1)).bytes, vec![i]);
        }
    }

    #[test]
    fn keys_do_not_cross_talk() {
        let mb = Mailbox::new();
        mb.put(
            0,
            1,
            Msg {
                bytes: vec![10],
                depart: 0.0,
            },
        );
        mb.put(
            0,
            2,
            Msg {
                bytes: vec![20],
                depart: 0.0,
            },
        );
        mb.put(
            1,
            1,
            Msg {
                bytes: vec![30],
                depart: 0.0,
            },
        );
        assert_eq!(mb.take(0, 1, 1, Duration::from_secs(1)).bytes, vec![30]);
        assert_eq!(mb.take(0, 0, 2, Duration::from_secs(1)).bytes, vec![20]);
        assert_eq!(mb.take(0, 0, 1, Duration::from_secs(1)).bytes, vec![10]);
    }

    #[test]
    fn blocking_take_wakes_on_put() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || mb2.take(0, 9, 9, Duration::from_secs(5)).bytes);
        std::thread::sleep(Duration::from_millis(20));
        mb.put(
            9,
            9,
            Msg {
                bytes: vec![42],
                depart: 0.0,
            },
        );
        assert_eq!(h.join().unwrap(), vec![42]);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn timeout_panics_with_context() {
        let mb = Mailbox::new();
        mb.take(5, 0, 0, Duration::from_millis(10));
    }

    #[test]
    fn try_take_returns_none_on_timeout_and_some_on_message() {
        let mb = Mailbox::new();
        assert!(mb.try_take(0, 0, Duration::from_millis(5)).is_none());
        mb.put(
            0,
            0,
            Msg {
                bytes: vec![9],
                depart: 0.0,
            },
        );
        let m = mb.try_take(0, 0, Duration::from_millis(5)).unwrap();
        assert_eq!(m.bytes, vec![9]);
    }

    #[test]
    fn register_takes_queued_message_without_waiting_state() {
        let mb = Mailbox::new();
        mb.put(
            1,
            4,
            Msg {
                bytes: vec![7],
                depart: 0.0,
            },
        );
        let m = mb.register_waiting(1, 4).expect("message was queued");
        assert_eq!(m.bytes, vec![7]);
        assert_eq!(mb.wait_state(), RankState::Running);
    }

    #[test]
    fn matching_put_flips_registered_waiter_to_running() {
        let mb = Mailbox::new();
        assert!(mb.register_waiting(1, 4).is_none());
        let before = mb.wait_state();
        assert!(matches!(before, RankState::Waiting { src: 1, tag: 4, .. }));

        // A non-matching deposit leaves the registration in place…
        mb.put(
            2,
            4,
            Msg {
                bytes: vec![0],
                depart: 0.0,
            },
        );
        assert_eq!(mb.wait_state(), before);

        // …a matching one atomically flips it.
        mb.put(
            1,
            4,
            Msg {
                bytes: vec![1],
                depart: 0.0,
            },
        );
        assert_eq!(mb.wait_state(), RankState::Running);
        let m = mb.take_slice(1, 4, Duration::from_millis(50)).unwrap();
        assert_eq!(m.bytes, vec![1]);
    }

    #[test]
    fn reset_for_respawn_clears_queues_state_and_bumps_epoch() {
        let mb = Mailbox::new();
        mb.put(
            0,
            1,
            Msg {
                bytes: vec![1],
                depart: 0.0,
            },
        );
        mb.set_done(true);
        mb.reset_for_respawn();
        // Residue from the dead round is gone, the slot is live again…
        assert_eq!(mb.wait_state(), RankState::Running);
        assert!(mb.try_take(0, 1, Duration::from_millis(5)).is_none());
        // …and the epoch advanced past anything the dead round issued.
        assert!(mb.register_waiting(0, 1).is_none());
        let RankState::Waiting { epoch, .. } = mb.wait_state() else {
            panic!("expected waiting");
        };
        assert!(epoch >= 2, "epoch {epoch} did not advance across reset");
    }

    #[test]
    fn reregistration_bumps_epoch() {
        let mb = Mailbox::new();
        assert!(mb.register_waiting(0, 0).is_none());
        let RankState::Waiting { epoch: e1, .. } = mb.wait_state() else {
            panic!("expected waiting");
        };
        mb.set_running();
        assert!(mb.register_waiting(0, 0).is_none());
        let RankState::Waiting { epoch: e2, .. } = mb.wait_state() else {
            panic!("expected waiting");
        };
        assert!(e2 > e1, "epoch must advance across re-registration");
    }
}
