//! Shared in-memory mailboxes: the "wires" of the simulated machine.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A message in flight. `depart` is the sender's virtual clock at the
/// moment the message left (0.0 under the wall-clock back-end).
#[derive(Debug)]
pub(crate) struct Msg {
    pub bytes: Vec<u8>,
    pub depart: f64,
}

/// One rank's incoming mailbox, keyed by `(source, tag)`.
///
/// FIFO per key (message order between a fixed pair with a fixed tag is
/// preserved — the property the deterministic matching argument rests on).
#[derive(Default)]
pub(crate) struct Mailbox {
    queues: Mutex<HashMap<(usize, u32), VecDeque<Msg>>>,
    cond: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message from `src` with `tag`.
    pub fn put(&self, src: usize, tag: u32, msg: Msg) {
        let mut q = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        q.entry((src, tag)).or_default().push_back(msg);
        drop(q);
        self.cond.notify_all();
    }

    /// Block until a message from `src` with `tag` arrives.
    ///
    /// Panics after `timeout` — in a correct SPMD program a matching send
    /// always exists, so a timeout means deadlock (or a tag mismatch) and
    /// aborting with context beats hanging forever.
    pub fn take(&self, me: usize, src: usize, tag: u32, timeout: Duration) -> Msg {
        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(queue) = q.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    return msg;
                }
            }
            let now = Instant::now();
            let remaining = deadline.saturating_duration_since(now);
            if remaining.is_zero() {
                panic!(
                    "rank {me}: recv(src={src}, tag={tag:#x}) timed out after {timeout:?} — \
                     deadlock or mismatched send/recv"
                );
            }
            let (guard, _res) = self
                .cond
                .wait_timeout(q, remaining)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Like [`Mailbox::take`] but returns `None` on timeout instead of
    /// panicking — the primitive behind `recv_bytes_timeout`, where the
    /// caller (fault-tolerant retry loops) owns the give-up policy.
    pub fn try_take(&self, src: usize, tag: u32, timeout: Duration) -> Option<Msg> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(queue) = q.get_mut(&(src, tag)) {
                if let Some(msg) = queue.pop_front() {
                    return Some(msg);
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _res) = self
                .cond
                .wait_timeout(q, remaining)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_take_roundtrip() {
        let mb = Mailbox::new();
        mb.put(
            3,
            7,
            Msg {
                bytes: vec![1, 2],
                depart: 0.5,
            },
        );
        let m = mb.take(0, 3, 7, Duration::from_secs(1));
        assert_eq!(m.bytes, vec![1, 2]);
        assert_eq!(m.depart, 0.5);
    }

    #[test]
    fn fifo_order_per_key() {
        let mb = Mailbox::new();
        for i in 0..5u8 {
            mb.put(
                0,
                1,
                Msg {
                    bytes: vec![i],
                    depart: 0.0,
                },
            );
        }
        for i in 0..5u8 {
            assert_eq!(mb.take(0, 0, 1, Duration::from_secs(1)).bytes, vec![i]);
        }
    }

    #[test]
    fn keys_do_not_cross_talk() {
        let mb = Mailbox::new();
        mb.put(
            0,
            1,
            Msg {
                bytes: vec![10],
                depart: 0.0,
            },
        );
        mb.put(
            0,
            2,
            Msg {
                bytes: vec![20],
                depart: 0.0,
            },
        );
        mb.put(
            1,
            1,
            Msg {
                bytes: vec![30],
                depart: 0.0,
            },
        );
        assert_eq!(mb.take(0, 1, 1, Duration::from_secs(1)).bytes, vec![30]);
        assert_eq!(mb.take(0, 0, 2, Duration::from_secs(1)).bytes, vec![20]);
        assert_eq!(mb.take(0, 0, 1, Duration::from_secs(1)).bytes, vec![10]);
    }

    #[test]
    fn blocking_take_wakes_on_put() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || mb2.take(0, 9, 9, Duration::from_secs(5)).bytes);
        std::thread::sleep(Duration::from_millis(20));
        mb.put(
            9,
            9,
            Msg {
                bytes: vec![42],
                depart: 0.0,
            },
        );
        assert_eq!(h.join().unwrap(), vec![42]);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn timeout_panics_with_context() {
        let mb = Mailbox::new();
        mb.take(5, 0, 0, Duration::from_millis(10));
    }

    #[test]
    fn try_take_returns_none_on_timeout_and_some_on_message() {
        let mb = Mailbox::new();
        assert!(mb.try_take(0, 0, Duration::from_millis(5)).is_none());
        mb.put(
            0,
            0,
            Msg {
                bytes: vec![9],
                depart: 0.0,
            },
        );
        let m = mb.try_take(0, 0, Duration::from_millis(5)).unwrap();
        assert_eq!(m.bytes, vec![9]);
    }
}
