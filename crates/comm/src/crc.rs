//! Table-driven CRC-32 (IEEE 802.3 polynomial, reflected), the same
//! checksum gzip and zlib use. Table is built in a `const fn` so there
//! is no startup cost and no external dependency.
//!
//! Lives in `qmc-comm` — the bottom of the workspace dependency graph —
//! because both the checkpoint wire format (`qmc-ckpt`) and the TCP
//! frame transport ([`crate::tcp`]) guard their payloads with it.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
