//! The trivial single-rank communicator.

use crate::{CommStats, Communicator, COLLECTIVE_TAG_BASE};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Size-1 communicator: sends to self are queued, everything else is a
/// no-op. Lets every parallel engine run serially without special cases.
pub struct SerialComm {
    queues: HashMap<u32, VecDeque<Vec<u8>>>,
    start: Instant,
    stats: CommStats,
    coll_seq: u32,
}

impl SerialComm {
    /// Create a fresh serial communicator.
    pub fn new() -> Self {
        Self {
            queues: HashMap::new(),
            // lint: allow(wall-clock) — the serial clock baseline
            start: Instant::now(),
            stats: CommStats::default(),
            coll_seq: 0,
        }
    }
}

impl Default for SerialComm {
    fn default() -> Self {
        Self::new()
    }
}

impl Communicator for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        assert!(
            tag < COLLECTIVE_TAG_BASE,
            "tag {tag:#x} is reserved for collectives"
        );
        assert_eq!(dest, 0, "dest rank {dest} out of range for size-1 world");
        self.stats.note_sent(data.len());
        self.queues.entry(tag).or_default().push_back(data.to_vec());
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        crate::check_recv_args(0, 1, src, tag);
        let msg = self
            .queues
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .unwrap_or_else(|| panic!("recv(tag={tag}) with no matching self-send — deadlock"));
        // Self-receives never block, so no recv_wait_seconds here.
        self.stats.note_received(msg.len());
        msg
    }

    fn recv_bytes_timeout(
        &mut self,
        src: usize,
        tag: u32,
        _timeout: std::time::Duration,
    ) -> Option<Vec<u8>> {
        crate::check_recv_args(0, 1, src, tag);
        // A self-send either already happened or never will: no waiting.
        let msg = self.queues.get_mut(&tag).and_then(|q| q.pop_front())?;
        self.stats.note_received(msg.len());
        Some(msg)
    }

    fn recv_bytes_into(&mut self, src: usize, tag: u32, buf: &mut Vec<u8>) {
        let msg = self.recv_bytes(src, tag);
        buf.clear();
        buf.extend_from_slice(&msg);
    }

    fn sendrecv_bytes_into(
        &mut self,
        dest: usize,
        send_tag: u32,
        data: &[u8],
        src: usize,
        recv_tag: u32,
        recv_buf: &mut Vec<u8>,
    ) {
        assert!(
            send_tag < COLLECTIVE_TAG_BASE,
            "tag {send_tag:#x} is reserved for collectives"
        );
        assert_eq!(dest, 0, "dest rank {dest} out of range for size-1 world");
        crate::check_recv_args(0, 1, src, recv_tag);
        // A self-sendrecv on an empty queue matches its own message, so
        // skip the queue round-trip entirely: no allocation at all.
        let empty = self
            .queues
            .get(&send_tag)
            .map(|q| q.is_empty())
            .unwrap_or(true);
        self.stats.note_sent(data.len());
        if send_tag == recv_tag && empty {
            self.stats.note_received(data.len());
            recv_buf.clear();
            recv_buf.extend_from_slice(data);
        } else {
            self.queues
                .entry(send_tag)
                .or_default()
                .push_back(data.to_vec());
            self.recv_bytes_into(src, recv_tag, recv_buf);
        }
    }

    fn compute(&mut self, units: f64) {
        self.stats.compute_seconds += units;
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_collective_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    fn send_internal(&mut self, _dest: usize, tag: u32, data: &[u8]) {
        self.queues.entry(tag).or_default().push_back(data.to_vec());
    }

    fn recv_internal(&mut self, _src: usize, tag: u32) -> Vec<u8> {
        self.queues
            .get_mut(&tag)
            .and_then(|q| q.pop_front())
            .expect("internal collective receive with no matching send")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_send_recv() {
        let mut c = SerialComm::new();
        c.send_bytes(0, 3, &[1, 2]);
        assert_eq!(c.recv_bytes(0, 3), vec![1, 2]);
    }

    #[test]
    fn sendrecv_to_self() {
        let mut c = SerialComm::new();
        let got = c.sendrecv_bytes(0, 1, &[9], 0, 1);
        assert_eq!(got, vec![9]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn recv_without_send_panics() {
        let mut c = SerialComm::new();
        c.recv_bytes(0, 1);
    }

    #[test]
    fn stats_track_self_sends() {
        let mut c = SerialComm::new();
        c.send_bytes(0, 1, &[0; 8]);
        assert_eq!(c.stats().bytes_sent, 8);
        assert_eq!(c.stats().max_message_bytes, 8);
        assert_eq!(c.stats().bytes_recv, 0);
        c.recv_bytes(0, 1);
        assert_eq!(c.stats().messages_recv, 1);
        assert_eq!(c.stats().bytes_recv, 8);
        assert_eq!(c.stats().recv_wait_seconds, 0.0);
        // The self-wrap fast path counts both directions too.
        let mut buf = Vec::new();
        c.sendrecv_bytes_into(0, 2, &[1, 2, 3], 0, 2, &mut buf);
        assert_eq!(c.stats().messages_recv, 2);
        assert_eq!(c.stats().bytes_recv, 11);
    }
}
