//! Deterministic communication-fault injection.
//!
//! [`FaultyComm`] wraps any [`Communicator`] and perturbs the *delivery
//! mechanics* of user-tag point-to-point traffic — drops (forcing a
//! retransmit), duplications, delays, transient send failures, and a
//! scheduled rank kill — without ever changing the *contents or order*
//! of what the application observes. The schedule is a pure hash of
//! `(plan seed, rank, event index)`, so a given seed produces the same
//! fault sequence on every run: fault-injection tests are as
//! reproducible as fixed-seed physics.
//!
//! On the receive side every user receive goes through
//! [`Communicator::recv_bytes_timeout`] with bounded exponential
//! backoff, so a peer that died mid-run turns into a clean panic after
//! `max_retries` attempts instead of a hang. Retry/timeout totals are
//! kept in [`FaultStats`]; `qmc_obs::publish_fault_stats` mirrors them
//! into the thread-local metrics registry as `comm.retries` /
//! `comm.timeouts` (the helper lives in `qmc-obs` because that crate
//! sits above this one in the dependency graph).
//!
//! Wire protocol: each user-tag payload is prefixed with an 8-byte
//! little-endian sequence number, per `(peer, tag)` channel. The
//! receiver discards any envelope whose sequence is below the next
//! expected one — that is what makes duplication *absorbable* rather
//! than corrupting. Collective (reserved-tag) traffic is forwarded
//! verbatim: the collectives are the recovery substrate (checkpoint
//! gathers/broadcasts), so faults are injected below them, not in them.

use crate::{CommStats, Communicator};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// What the schedule decided for one send event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendFault {
    None,
    /// First transmission lost; the wrapper retransmits immediately.
    Drop,
    /// Payload delivered twice.
    Duplicate,
    /// Delivery held back until this rank's next communication call.
    Delay,
    /// Transient send failure (send "errors out" once, then succeeds on
    /// retry) — same observable outcome as a drop but counted apart.
    TransientFail,
}

/// Seeded, deterministic fault schedule for one world.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Master seed of the schedule hash.
    pub seed: u64,
    /// Per-mille probability a send's first transmission is dropped.
    pub drop_per_mille: u32,
    /// Per-mille probability a send is delivered twice.
    pub dup_per_mille: u32,
    /// Per-mille probability a delivery is delayed to the next call.
    pub delay_per_mille: u32,
    /// Per-mille probability of a transient send failure.
    pub fail_per_mille: u32,
    /// Kill `(rank, sweep)`: that rank panics when the driver announces
    /// the given sweep via [`FaultyComm::tick_sweep`].
    pub kill_at_sweep: Option<(usize, usize)>,
    /// Receive retry budget before giving up (panicking).
    pub max_retries: u32,
    /// First receive timeout; doubled on each retry (capped at 2^6×).
    pub base_timeout: Duration,
}

impl FaultPlan {
    /// A plan with no faults enabled — wrap-through behaviour, useful as
    /// a baseline and as a builder starting point.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            fail_per_mille: 0,
            kill_at_sweep: None,
            max_retries: 8,
            base_timeout: Duration::from_millis(200),
        }
    }

    /// Enable message drops with probability `per_mille`/1000 per send.
    pub fn drops(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Enable message duplication.
    pub fn duplicates(mut self, per_mille: u32) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// Enable message delays.
    pub fn delays(mut self, per_mille: u32) -> Self {
        self.delay_per_mille = per_mille;
        self
    }

    /// Enable transient send failures.
    pub fn transient_fails(mut self, per_mille: u32) -> Self {
        self.fail_per_mille = per_mille;
        self
    }

    /// Kill `rank` when the driver reaches `sweep`.
    pub fn kill(mut self, rank: usize, sweep: usize) -> Self {
        self.kill_at_sweep = Some((rank, sweep));
        self
    }

    /// Set the receive retry budget and base timeout.
    pub fn retry(mut self, max_retries: u32, base_timeout: Duration) -> Self {
        self.max_retries = max_retries;
        self.base_timeout = base_timeout;
        self
    }
}

/// Fault and recovery counters for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Retransmissions (dropped first transmissions + transient send
    /// failures) plus receive re-attempts after a timeout.
    pub retries: u64,
    /// Receive timeouts observed (each is followed by a retry or, once
    /// the budget is exhausted, a panic).
    pub timeouts: u64,
    /// Sends whose first transmission was dropped.
    pub dropped: u64,
    /// Sends delivered twice.
    pub duplicated: u64,
    /// Deliveries held back to a later communication call.
    pub delayed: u64,
    /// Transient send failures.
    pub send_failures: u64,
    /// Stale duplicate envelopes discarded on receive.
    pub stale_discarded: u64,
}

/// SplitMix64 finalizer — inlined here because `qmc-comm` sits below
/// `qmc-rng` in the dependency graph. Only drives the fault schedule;
/// never the physics.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault-injecting wrapper around any communicator. See the module
/// docs for the wire protocol and determinism guarantees.
pub struct FaultyComm<'a, C: Communicator> {
    inner: &'a mut C,
    plan: FaultPlan,
    /// Next sequence number per outgoing `(dest, tag)` channel.
    send_seq: HashMap<(usize, u32), u64>,
    /// Next expected sequence per incoming `(src, tag)` channel.
    recv_seq: HashMap<(usize, u32), u64>,
    /// Delayed envelopes, flushed (in order) before any later comm call.
    pending: VecDeque<(usize, u32, Vec<u8>)>,
    /// Monotone send-event index feeding the schedule hash.
    events: u64,
    /// Receive-wait seconds spent in this wrapper's retry loop that the
    /// inner backend did *not* charge itself (see [`Self::stats`]).
    extra_wait: f64,
    fstats: FaultStats,
}

impl<'a, C: Communicator> FaultyComm<'a, C> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a mut C, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            pending: VecDeque::new(),
            events: 0,
            extra_wait: 0.0,
            fstats: FaultStats::default(),
        }
    }

    /// Fault counters accumulated so far on this rank.
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Driver hook: announce that sweep `sweep` is about to run. If the
    /// plan schedules this rank's death here, it dies — by design the
    /// same way a real node loss presents: mid-run, without farewell.
    pub fn tick_sweep(&mut self, sweep: usize) {
        if self.plan.kill_at_sweep == Some((self.inner.rank(), sweep)) {
            panic!(
                "rank {}: injected rank kill at sweep {sweep}",
                self.inner.rank()
            );
        }
    }

    /// Deterministic decision for send event `n`.
    fn decide(&self, n: u64) -> SendFault {
        let h = mix(self.plan.seed ^ (self.inner.rank() as u64).rotate_left(32) ^ n);
        let r = (h % 1000) as u32;
        let p = &self.plan;
        if r < p.drop_per_mille {
            SendFault::Drop
        } else if r < p.drop_per_mille + p.dup_per_mille {
            SendFault::Duplicate
        } else if r < p.drop_per_mille + p.dup_per_mille + p.delay_per_mille {
            SendFault::Delay
        } else if r < p.drop_per_mille + p.dup_per_mille + p.delay_per_mille + p.fail_per_mille {
            SendFault::TransientFail
        } else {
            SendFault::None
        }
    }

    /// Deliver every delayed envelope, preserving per-channel order.
    /// Called at the top of every communication operation, so a delay
    /// can never reorder a channel — only late-arrive within it.
    fn flush_pending(&mut self) {
        while let Some((dest, tag, env)) = self.pending.pop_front() {
            self.inner.send_bytes(dest, tag, &env);
        }
    }

    fn timeout_for(&self, attempt: u32) -> Duration {
        // Bounded exponential backoff: base × 2^min(attempt, 6).
        self.plan.base_timeout * (1u32 << attempt.min(6))
    }
}

impl<C: Communicator> Communicator for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.flush_pending();
        let seq_entry = self.send_seq.entry((dest, tag)).or_insert(0);
        let seq = *seq_entry;
        *seq_entry += 1;
        let mut env = Vec::with_capacity(8 + data.len());
        env.extend_from_slice(&seq.to_le_bytes());
        env.extend_from_slice(data);
        let n = self.events;
        self.events += 1;
        match self.decide(n) {
            SendFault::None => self.inner.send_bytes(dest, tag, &env),
            SendFault::Drop => {
                // First transmission lost in the "network"; the wrapper
                // plays link layer and retransmits.
                self.fstats.dropped += 1;
                self.fstats.retries += 1;
                self.inner.send_bytes(dest, tag, &env);
            }
            SendFault::TransientFail => {
                self.fstats.send_failures += 1;
                self.fstats.retries += 1;
                self.inner.send_bytes(dest, tag, &env);
            }
            SendFault::Duplicate => {
                self.fstats.duplicated += 1;
                self.inner.send_bytes(dest, tag, &env);
                self.inner.send_bytes(dest, tag, &env);
            }
            SendFault::Delay => {
                self.fstats.delayed += 1;
                self.pending.push_back((dest, tag, env));
            }
        }
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let expected = *self.recv_seq.get(&(src, tag)).unwrap_or(&0);
        let mut attempt: u32 = 0;
        loop {
            // Our own delayed sends must not starve the peer while we
            // sit in a receive loop.
            self.flush_pending();
            let timeout = self.timeout_for(attempt);
            // Charge retry/backoff waiting the inner backend doesn't
            // account itself, so comm_fraction() stays honest under
            // fault injection. Only the *shortfall* is added: host time
            // spent in the attempt minus whatever the backend already
            // put into recv_wait_seconds (ThreadComm charges timed-out
            // waits itself; a virtual-clock backend charges nothing and
            // also sleeps ~no host time, so the shortfall is ~0 there
            // and no wall time pollutes the virtual ledger).
            let wait_before = self.inner.stats().recv_wait_seconds;
            // lint: allow(wall-clock) — measuring the retry wait itself
            let t0 = std::time::Instant::now();
            let attempt_result = self.inner.recv_bytes_timeout(src, tag, timeout);
            let inner_charged = self.inner.stats().recv_wait_seconds - wait_before;
            self.extra_wait += (t0.elapsed().as_secs_f64() - inner_charged).max(0.0);
            match attempt_result {
                Some(env) => {
                    assert!(
                        env.len() >= 8,
                        "rank {}: recv(src={src}, tag={tag:#x}): envelope shorter than its \
                         sequence header",
                        self.inner.rank()
                    );
                    let seq =
                        u64::from_le_bytes(env[..8].try_into().expect("length asserted above"));
                    if seq < expected {
                        // Stale duplicate of an envelope already
                        // consumed; discard and keep waiting.
                        self.fstats.stale_discarded += 1;
                        continue;
                    }
                    assert_eq!(
                        seq,
                        expected,
                        "rank {}: recv(src={src}, tag={tag:#x}): sequence gap (ordered \
                         channel violated)",
                        self.inner.rank()
                    );
                    self.recv_seq.insert((src, tag), expected + 1);
                    return env[8..].to_vec();
                }
                None => {
                    self.fstats.timeouts += 1;
                    attempt += 1;
                    if attempt > self.plan.max_retries {
                        panic!(
                            "rank {}: recv(src={src}, tag={tag:#x}) gave up after {attempt} \
                             attempts ({} timeouts) — peer presumed dead",
                            self.inner.rank(),
                            self.fstats.timeouts
                        );
                    }
                    self.fstats.retries += 1;
                }
            }
        }
    }

    fn compute(&mut self, units: f64) {
        self.inner.compute(units);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn stats(&self) -> CommStats {
        // The retry loop's uncharged waiting is communication time spent
        // blocked in receives, same as a backend-level recv wait.
        let mut s = self.inner.stats();
        s.recv_wait_seconds += self.extra_wait;
        s.comm_seconds += self.extra_wait;
        s
    }

    fn next_collective_seq(&mut self) -> u32 {
        self.inner.next_collective_seq()
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        // Collectives ride below the fault layer, but delayed user
        // deliveries still have to go out first so a collective can
        // never overtake (and effectively cancel) a user send.
        self.flush_pending();
        self.inner.send_internal(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.flush_pending();
        self.inner.recv_internal(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_threads, run_threads_with_timeout, ReduceOp};

    /// Ping-pong a long message sequence in both directions under heavy
    /// absorbable faults; contents and order must be untouched.
    fn exchange_under(plan: FaultPlan) -> Vec<Vec<u8>> {
        run_threads(2, move |comm| {
            let mut fc = FaultyComm::new(comm, plan);
            let me = fc.rank();
            let other = 1 - me;
            let mut got = Vec::new();
            for i in 0..200u8 {
                if me == 0 {
                    fc.send_bytes(other, 5, &[i, me as u8]);
                    got.push(fc.recv_bytes(other, 6));
                } else {
                    got.push(fc.recv_bytes(other, 5));
                    fc.send_bytes(other, 6, &[i, me as u8]);
                }
            }
            got.concat()
        })
    }

    #[test]
    fn absorbable_faults_leave_payloads_intact() {
        let clean = exchange_under(FaultPlan::new(3));
        let noisy = exchange_under(
            FaultPlan::new(3)
                .drops(100)
                .duplicates(100)
                .delays(100)
                .transient_fails(50),
        );
        assert_eq!(clean, noisy, "fault layer corrupted a payload");
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = FaultPlan::new(11).drops(80).duplicates(80).delays(80);
        let stats_of = |plan: FaultPlan| {
            run_threads(2, move |comm| {
                let mut fc = FaultyComm::new(comm, plan);
                let other = 1 - fc.rank();
                for i in 0..100u8 {
                    fc.send_bytes(other, 1, &[i]);
                    let _ = fc.recv_bytes(other, 1);
                }
                fc.fault_stats()
            })
        };
        let a = stats_of(plan);
        let b = stats_of(plan);
        assert_eq!(a, b, "same seed must give the same fault sequence");
        assert!(
            a.iter().any(|s| s.dropped + s.duplicated + s.delayed > 0),
            "sanity: faults actually fired: {a:?}"
        );
        let c = stats_of(FaultPlan::new(12).drops(80).duplicates(80).delays(80));
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn collectives_unaffected_by_fault_layer() {
        let sums = run_threads(4, |comm| {
            let plan = FaultPlan::new(5).drops(200).duplicates(200).delays(200);
            let mut fc = FaultyComm::new(comm, plan);
            fc.allreduce_f64(&[fc.rank() as f64], ReduceOp::Sum)[0]
        });
        assert_eq!(sums, vec![6.0; 4]);
    }

    #[test]
    fn dead_peer_turns_into_bounded_panic_with_retries() {
        // Rank 1 never sends; rank 0's receive must time out, retry with
        // backoff, and then panic (propagated by run_threads' join).
        let result = std::panic::catch_unwind(|| {
            run_threads_with_timeout(2, Duration::from_secs(5), |comm| {
                let plan = FaultPlan::new(1).retry(2, Duration::from_millis(10));
                let mut fc = FaultyComm::new(comm, plan);
                if fc.rank() == 0 {
                    let _ = fc.recv_bytes(1, 3);
                }
            })
        });
        assert!(result.is_err(), "dead peer must fail the run, not hang");
    }

    #[test]
    fn timeouts_and_retries_are_counted() {
        run_threads(2, |comm| {
            let plan = FaultPlan::new(1).retry(8, Duration::from_millis(5));
            let mut fc = FaultyComm::new(comm, plan);
            if fc.rank() == 0 {
                // Peer sends only after a pause: at least one timeout+retry.
                let got = fc.recv_bytes(1, 2);
                assert_eq!(got, vec![42]);
                let s = fc.fault_stats();
                assert!(s.timeouts >= 1, "expected a timeout, got {s:?}");
                assert!(s.retries >= 1);
            } else {
                std::thread::sleep(Duration::from_millis(40));
                fc.send_bytes(0, 2, &[42]);
            }
        });
    }

    /// An inner backend whose timed-out receives burn host time but
    /// charge nothing themselves — the worst case for wait attribution.
    struct SleepyComm {
        deliveries_to_skip: u32,
        stats: CommStats,
    }

    impl Communicator for SleepyComm {
        fn rank(&self) -> usize {
            0
        }
        fn size(&self) -> usize {
            1
        }
        fn send_bytes(&mut self, _dest: usize, _tag: u32, data: &[u8]) {
            self.stats.note_sent(data.len());
        }
        fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
            self.recv_bytes_timeout(src, tag, Duration::from_secs(1))
                .expect("attempts exhausted")
        }
        fn recv_bytes_timeout(
            &mut self,
            _src: usize,
            _tag: u32,
            timeout: Duration,
        ) -> Option<Vec<u8>> {
            if self.deliveries_to_skip > 0 {
                self.deliveries_to_skip -= 1;
                std::thread::sleep(timeout);
                return None;
            }
            // Deliver a well-formed seq-0 envelope.
            let mut env = 0u64.to_le_bytes().to_vec();
            env.push(7);
            self.stats.note_received(env.len());
            Some(env)
        }
        fn compute(&mut self, _units: f64) {}
        fn now(&self) -> f64 {
            0.0
        }
        fn stats(&self) -> CommStats {
            self.stats
        }
        fn next_collective_seq(&mut self) -> u32 {
            0
        }
        fn send_internal(&mut self, _dest: usize, _tag: u32, _data: &[u8]) {}
        fn recv_internal(&mut self, _src: usize, _tag: u32) -> Vec<u8> {
            Vec::new()
        }
    }

    #[test]
    fn backoff_sleeps_are_charged_to_recv_wait() {
        // Two timed-out attempts at 10 ms and 20 ms, then delivery: the
        // inner backend charged nothing, so the wrapper must surface
        // ≥ 30 ms in recv_wait_seconds (and inside comm_seconds).
        let mut inner = SleepyComm {
            deliveries_to_skip: 2,
            stats: CommStats::default(),
        };
        let plan = FaultPlan::new(1).retry(8, Duration::from_millis(10));
        let mut fc = FaultyComm::new(&mut inner, plan);
        assert_eq!(fc.recv_bytes(0, 3), vec![7]);
        let s = fc.stats();
        assert!(
            s.recv_wait_seconds >= 0.030,
            "backoff sleeps not attributed: {s:?}"
        );
        assert!(s.comm_seconds >= s.recv_wait_seconds);
        assert_eq!(fc.fault_stats().timeouts, 2);
        // The inner ledger itself stays unchanged.
        assert_eq!(inner.stats.recv_wait_seconds, 0.0);
    }

    #[test]
    fn thread_backend_waits_are_not_double_counted() {
        // ThreadComm already charges timed-out receive waits itself; the
        // wrapper must only add its (tiny) bookkeeping shortfall, not a
        // second copy of the wait. Checked structurally against the
        // inner ledger rather than against wall clock: scheduler delays
        // on a loaded host make wall-proportional bounds flaky, but the
        // wrapper's *extra* charge beyond what the backend recorded is
        // loop overhead regardless of load, while a double count would
        // re-add the full backend wait on top.
        let results = run_threads(2, |comm| {
            let plan = FaultPlan::new(1).retry(8, Duration::from_millis(25));
            let mut fc = FaultyComm::new(&mut *comm, plan);
            if fc.rank() == 0 {
                let got = fc.recv_bytes(1, 2);
                assert_eq!(got, vec![9]);
            } else {
                std::thread::sleep(Duration::from_millis(60));
                fc.send_bytes(0, 2, &[9]);
            }
            let outer = fc.stats();
            drop(fc);
            (outer, comm.stats())
        });
        let (outer0, inner0) = &results[0];
        // Rank 0 blocked ~60 ms across its timed-out attempts, which the
        // thread backend charged itself.
        assert!(
            inner0.recv_wait_seconds > 0.0,
            "backend charged no wait: {inner0:?}"
        );
        // Nothing the backend charged goes missing through the wrapper…
        assert!(outer0.recv_wait_seconds >= inner0.recv_wait_seconds);
        // …and the wrapper's own contribution is only the bookkeeping
        // shortfall. Double counting would make it ≥ the backend's
        // charge (~60 ms), far above this bound.
        let extra = outer0.recv_wait_seconds - inner0.recv_wait_seconds;
        assert!(
            extra <= 0.5 * inner0.recv_wait_seconds + 0.020,
            "recv wait double-counted: {extra} s extra vs {} s backend-charged",
            inner0.recv_wait_seconds
        );
    }

    #[test]
    fn scheduled_kill_fires_only_on_its_rank_and_sweep() {
        let plan = FaultPlan::new(9).kill(1, 3);
        let result = std::panic::catch_unwind(|| {
            run_threads(2, |comm| {
                let mut fc = FaultyComm::new(comm, plan);
                for sweep in 0..5 {
                    fc.tick_sweep(sweep);
                }
                fc.rank()
            })
        });
        assert!(result.is_err(), "rank 1 must die at sweep 3");
        // The same plan on a 1-rank world (only rank 0) never fires.
        let ok = run_threads(1, move |comm| {
            let mut fc = FaultyComm::new(comm, plan);
            for sweep in 0..5 {
                fc.tick_sweep(sweep);
            }
            true
        });
        assert_eq!(ok, vec![true]);
    }
}
