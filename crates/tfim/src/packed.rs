//! Multi-spin-coded TFIM sweep kernels: 64 spins per `u64`, updated with
//! bitwise logic and **no per-spin branch, no per-spin RNG call**.
//!
//! # Replica packing (primary mode)
//!
//! [`PackedReplicas`] runs up to 64 independent replicas of the same
//! model in lockstep: bit `j` of word `i` is spin `i` of replica `j`
//! (bit 1 ⇔ spin +1). One checkerboard site visit then:
//!
//! 1. gathers the (2 or 4) spatial and 2 temporal neighbour words and
//!    reduces them to *bit planes* of the per-lane up-neighbour counts
//!    with carry-save adders (`sum2`/`sum4` — pure XOR/AND trees);
//! 2. draws all lane variates with **one** batched [`Rng64::fill_u64`]
//!    call of 32 words — each draw supplies two independent 32-bit
//!    decision lanes (lane `j` consumes the low half of draw `j/2` when
//!    `j` is even, the high half when odd — the RNG lane discipline
//!    documented in DESIGN.md);
//! 3. assembles per-lane 6-bit table indices eight lanes at a time with
//!    a bit→byte spread and resolves every acceptance as an integer
//!    compare `r ≤ thr` against the precomputed [`PackedAcceptTable`]
//!    (the [`AcceptTable`] ratios rescaled to `u32` thresholds, so
//!    `P(accept) = min(1, e^{−ΔS})` to within 2⁻³¹ — orders of magnitude
//!    below any statistical resolution of the estimators);
//! 4. merges all accepted flips with a single masked XOR into the word.
//!
//! [`PackedTfimLadder`] reuses the same kernel with a per-lane threshold
//! table — one β per lane — and adds bitwise replica exchange between
//! adjacent rungs. [`PackedDistTfim`] distributes the replica-packed
//! lattice over a processor mesh, exchanging ghost *words* (8 bytes per
//! boundary cell, all 64 lanes in one message). [`PackedSpatialTfim`]
//! packs 64 consecutive sites of a single replica instead, for lattices
//! whose x-extent divides by 64.
//!
//! The scalar engines are untouched: their fixed-seed trajectories remain
//! bit-identical. The packed path is validated statistically — against
//! the exact-diagonalization oracle and against scalar-path means — in
//! the tests below, and its measurements are *bit-identical* to
//! [`SerialTfim::measure`] on equal configurations (same integer bond
//! sums, same float operation order).

use crate::parallel::{dir_bytes_counter, dir_id, grid_for, FLOPS_PER_UPDATE};
use crate::serial::{SerialTfim, TfimMeasurement, TfimSeries};
use crate::{AcceptTable, StCouplings, TfimModel};
use qmc_comm::{Communicator, ReduceOp};
use qmc_lattice::{Decomposition, Dir, LaneCounter, PackedLattice, Subdomain};
use qmc_obs::{CounterId, Registry};
use qmc_rng::Rng64;

/// Map an acceptance ratio to a `u32` threshold such that
/// `P(r ≤ thr) = (thr+1)/2³² = min(1, ratio)` for a uniform `u32` draw
/// `r`, exactly for `ratio ≥ 1` and to within 2⁻³¹ below (scaling plus
/// the saturating float→int cast). 32 random bits per decision let one
/// `u64` draw feed two lanes — that halves the RNG cost per site update,
/// and the ≤ 2⁻³¹ acceptance-probability quantization is invisible next
/// to statistical errors of order 10⁻⁴.
fn threshold(ratio: f64) -> u32 {
    if ratio >= 1.0 {
        u32::MAX
    } else {
        const TWO32: f64 = 4_294_967_296.0; // 2^32
                                            // Scaling by a power of two is exact except for the final
                                            // rounding into f64's 52-bit mantissa; the saturating cast and
                                            // the −1 keep the acceptance probability within 2⁻³¹ of the
                                            // ratio (and strictly below 1 for every ratio < 1).
        ((ratio * TWO32) as u32).saturating_sub(1)
    }
}

/// [`AcceptTable`] rescaled to integer thresholds, indexed by a 6-bit
/// pattern assembled per lane from the bit planes:
/// `idx = s | u_sp·2 | u_t·16` where `s` is the site bit, `u_sp ∈ [0, 4]`
/// the count of *up* spatial neighbours and `u_t ∈ [0, 2]` the count of
/// up temporal neighbours. Unreachable patterns hold threshold 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedAcceptTable {
    thr: [u32; 64],
}

impl PackedAcceptTable {
    /// Tabulate thresholds for a site with `spatial_neighbors` (2 on a
    /// chain, 4 on a square lattice) spatial neighbours.
    pub fn new(c: &StCouplings, spatial_neighbors: usize) -> Self {
        assert!(
            spatial_neighbors == 2 || spatial_neighbors == 4,
            "spatial_neighbors must be 2 (chain) or 4 (square)"
        );
        let scalar = AcceptTable::new(c);
        let mut thr = [0u32; 64];
        for s_bit in 0..2usize {
            let s: i8 = if s_bit == 1 { 1 } else { -1 };
            for u_sp in 0..=spatial_neighbors {
                for u_t in 0..=2usize {
                    // The signed neighbour sums of the scalar table: each
                    // down neighbour contributes −1, each up +1.
                    let sp = 2 * u_sp as i32 - spatial_neighbors as i32;
                    let tp = 2 * u_t as i32 - 2;
                    thr[s_bit | (u_sp << 1) | (u_t << 4)] = threshold(scalar.ratio(s, sp, tp));
                }
            }
        }
        Self { thr }
    }

    /// Threshold for an assembled 6-bit index.
    #[inline(always)]
    fn get(&self, idx: usize) -> u32 {
        self.thr[idx & 63]
    }

    /// Raw threshold row (per-lane ladder tables are flat copies).
    fn row(&self) -> [u32; 64] {
        self.thr
    }
}

/// Carry-save add of two one-bit-per-lane words: `(sum, carry)` planes.
#[inline(always)]
fn sum2(a: u64, b: u64) -> (u64, u64) {
    (a ^ b, a & b)
}

/// Bit planes `(p0, p1, p2)` of the per-lane count of set bits among four
/// words (count ∈ [0, 4], so three planes suffice).
#[inline(always)]
fn sum4(a: u64, b: u64, c: u64, d: u64) -> (u64, u64, u64) {
    let (s0, c0) = sum2(a, b);
    let (s1, c1) = sum2(c, d);
    let (p0, carry) = sum2(s0, s1);
    // c0 + c1 + carry ∈ [0, 2]: c0&c1 ⇒ s0 = s1 = 0 ⇒ carry = 0, and
    // carry ⇒ s0 = s1 = 1 ⇒ c0 = c1 = 0 — so XOR/AND recover both bits.
    (p0, c0 ^ c1 ^ carry, c0 & c1)
}

/// Per-lane neighbour-count bit planes of one packed site: spatial count
/// planes `s0..s2` (value `s0 + 2·s1 + 4·s2`) and temporal planes
/// `t0, t1`.
#[derive(Clone, Copy)]
struct Planes {
    s0: u64,
    s1: u64,
    s2: u64,
    t0: u64,
    t1: u64,
}

impl Planes {
    /// Reduce neighbour words to count planes; `north`/`south` are
    /// ignored for chains (`ly == 1`).
    #[inline(always)]
    fn gather(ly: usize, east: u64, west: u64, north: u64, south: u64, up: u64, down: u64) -> Self {
        let (s0, s1, s2) = if ly > 1 {
            sum4(east, west, north, south)
        } else {
            let (a, b) = sum2(east, west);
            (a, b, 0)
        };
        let (t0, t1) = sum2(up, down);
        Self { s0, s1, s2, t0, t1 }
    }
}

/// Raw `u64` draws consumed per packed site word: two 32-bit decision
/// lanes per draw cover all 64 bit lanes. The count is independent of the
/// active lane count so the RNG stream layout is model-determined.
const DRAWS_PER_WORD: usize = 32;

/// Spread the low 8 bits of `b` to the least-significant bit of each of
/// the 8 bytes of the result (bit `k` → bit `8k`), in three shift-or-mask
/// steps. Shifting the spread planes left by 0..5 and OR-ing assembles
/// eight 6-bit table indices — one per byte — in parallel.
#[inline(always)]
fn spread8(b: u64) -> u64 {
    let mut x = b & 0xFF;
    x = (x | (x << 28)) & 0x0000_000F_0000_000F;
    x = (x | (x << 14)) & 0x0003_0003_0003_0003;
    x = (x | (x << 7)) & 0x0101_0101_0101_0101;
    x
}

/// Resolve the acceptance mask of one packed site: lane `j` compares a
/// uniform 32-bit variate (the low half of draw `rnd[j/2]` for even `j`,
/// the high half for odd `j`) against `thr(j, idx_j)`, where `idx_j` is
/// the 6-bit pattern of lane `j`'s site bit and neighbour-count planes.
/// The indices are assembled eight lanes at a time with [`spread8`] — one
/// byte per lane — instead of a per-lane shift cascade. Returns a mask
/// with bit `j` set iff lane `j` accepts; the caller merges it with one
/// XOR.
#[inline(always)]
fn resolve_word(w: u64, pl: Planes, rnd: &[u64], thr: impl Fn(usize, usize) -> u32) -> u64 {
    debug_assert_eq!(rnd.len(), DRAWS_PER_WORD);
    let mut accept = 0u64;
    for chunk in 0..8usize {
        let sh = chunk * 8;
        let idxb = spread8(w >> sh)
            | spread8(pl.s0 >> sh) << 1
            | spread8(pl.s1 >> sh) << 2
            | spread8(pl.s2 >> sh) << 3
            | spread8(pl.t0 >> sh) << 4
            | spread8(pl.t1 >> sh) << 5;
        let mut bits = 0u64;
        for half in 0..4usize {
            let r = rnd[4 * chunk + half];
            let j = 2 * half;
            let idx_lo = ((idxb >> (8 * j)) & 63) as usize;
            let idx_hi = ((idxb >> (8 * j + 8)) & 63) as usize;
            bits |= (((r as u32) <= thr(sh + j, idx_lo)) as u64) << j;
            bits |= ((((r >> 32) as u32) <= thr(sh + j + 1, idx_hi)) as u64) << (j + 1);
        }
        accept |= bits << sh;
    }
    accept
}

/// Per-lane `(up-spin, equal-spatial-bond, equal-temporal-bond)` counts
/// of a replica-packed spacetime configuration — the integer inputs to
/// every packed observable. Each site owns its `+x` (and `+y`) and `+t`
/// bonds, exactly like [`SerialTfim::bond_sums`].
fn lane_counts(model: &TfimModel, lat: &PackedLattice) -> ([u64; 64], [u64; 64], [u64; 64]) {
    let (lx, ly, mm) = (model.lx, model.ly, model.m);
    let slice = lx * ly;
    let mask = lat.lane_mask();
    let words = lat.words();
    let mut ups = LaneCounter::new();
    let mut speq = LaneCounter::new();
    let mut teq = LaneCounter::new();
    for t in 0..mm {
        let tslice = t * slice;
        let tup = ((t + 1) % mm) * slice;
        for y in 0..ly {
            let row = tslice + y * lx;
            let north = tslice + ((y + 1) % ly) * lx;
            for x in 0..lx {
                let w = words[row + x];
                ups.push(w);
                let xp = if x + 1 == lx { 0 } else { x + 1 };
                speq.push(!(w ^ words[row + xp]) & mask);
                if ly > 1 {
                    speq.push(!(w ^ words[north + x]) & mask);
                }
                teq.push(!(w ^ words[tup + y * lx + x]) & mask);
            }
        }
    }
    (ups.finish(), speq.finish(), teq.finish())
}

/// Assemble a per-lane measurement from the lane counts (bit-identical to
/// the scalar estimator path: same integers, same float operation order).
fn lane_measurement(
    c: &StCouplings,
    model: &TfimModel,
    up: u64,
    sp_eq: u64,
    t_eq: u64,
) -> TfimMeasurement {
    let n = model.n_sites();
    let cells = (n * model.m) as i64;
    let n_sp_bonds = cells * if model.ly > 1 { 2 } else { 1 };
    let sp = (2 * sp_eq as i64 - n_sp_bonds) as f64;
    let tt = (2 * t_eq as i64 - cells) as f64;
    let mag = (2 * up as i64 - cells) as f64 / cells as f64;
    TfimMeasurement {
        energy_per_site: c.energy(n, model.m, sp, tt) / n as f64,
        abs_m: mag.abs(),
        m2: mag * mag,
        sigma_x: c.sigma_x(n, model.m, tt),
    }
}

/// Replica-packed serial TFIM engine: up to 64 independent replicas of
/// one model advancing through a shared bitwise checkerboard sweep.
#[derive(Debug, Clone)]
pub struct PackedReplicas {
    model: TfimModel,
    c: StCouplings,
    lat: PackedLattice,
    table: PackedAcceptTable,
    /// Persistent per-site draw buffer ([`DRAWS_PER_WORD`] raw `u64`s) —
    /// the sweep performs zero heap allocations.
    rbuf: Vec<u64>,
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    spins_dirty: bool,
}

impl PackedReplicas {
    /// `lanes` replicas of `model`, all starting fully aligned.
    pub fn new(model: TfimModel, lanes: usize) -> Self {
        let model = model.validated();
        let cells = model.lx * model.ly * model.m;
        let c = model.couplings();
        let k_sp = if model.ly > 1 { 4 } else { 2 };
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        Self {
            model,
            c,
            lat: PackedLattice::new(cells, lanes),
            table: PackedAcceptTable::new(&c, k_sp),
            rbuf: vec![0; DRAWS_PER_WORD],
            metrics,
            id_accepted,
            id_proposed,
            spins_dirty: true,
        }
    }

    /// Pack one scalar engine per lane (all must share the same model).
    pub fn from_engines(engines: &[SerialTfim]) -> Self {
        assert!(
            !engines.is_empty() && engines.len() <= 64,
            "1..=64 replicas per packed batch"
        );
        let model = *engines[0].model();
        let mut packed = Self::new(model, engines.len());
        for (lane, eng) in engines.iter().enumerate() {
            assert_eq!(*eng.model(), model, "all packed replicas share one model");
            packed.lat.pack_lane(lane, eng.export_spins());
        }
        packed
    }

    /// Hand every lane's configuration back to its scalar engine.
    pub fn unpack_into_engines(&self, engines: &mut [SerialTfim]) {
        assert_eq!(engines.len(), self.lat.lanes(), "engine count != lanes");
        let mut buf = vec![0i8; self.lat.cells()];
        for (lane, eng) in engines.iter_mut().enumerate() {
            self.lat.unpack_lane(lane, &mut buf);
            eng.import_spins(&buf);
        }
    }

    /// Load one replica's scalar configuration into a lane.
    pub fn load_replica(&mut self, lane: usize, spins: &[i8]) {
        self.lat.pack_lane(lane, spins);
        self.spins_dirty = true;
    }

    /// Extract one replica's scalar configuration.
    pub fn extract_replica(&self, lane: usize, out: &mut [i8]) {
        self.lat.unpack_lane(lane, out);
    }

    /// Model parameters.
    pub fn model(&self) -> &TfimModel {
        &self.model
    }

    /// Number of packed replicas.
    pub fn lanes(&self) -> usize {
        self.lat.lanes()
    }

    /// Metropolis proposals accepted across all lanes (`tfim.accepted`).
    pub fn accepted(&self) -> u64 {
        self.metrics.value(self.id_accepted)
    }

    /// Metropolis proposals made across all lanes (`tfim.proposed`).
    pub fn proposed(&self) -> u64 {
        self.metrics.value(self.id_proposed)
    }

    /// Fraction of proposals accepted so far.
    pub fn acceptance_rate(&self) -> f64 {
        self.accepted() as f64 / self.proposed().max(1) as f64
    }

    /// Engine metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// One bitwise checkerboard Metropolis sweep over every lane: the
    /// site visit order matches [`SerialTfim::metropolis_sweep`]; each
    /// site consumes [`DRAWS_PER_WORD`] raw draws through one batched
    /// [`Rng64::fill_u64`] call and resolves all lanes branch-free.
    #[qmc_hot::hot]
    pub fn metropolis_sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("tfim.packed_sweep");
        let m = self.model;
        let (lx, ly, mm) = (m.lx, m.ly, m.m);
        let slice = lx * ly;
        let lanes = self.lat.lanes();
        let lane_mask = self.lat.lane_mask();
        let table = self.table;
        let rbuf = &mut self.rbuf[..DRAWS_PER_WORD];
        let words = self.lat.words_mut();
        let mut accepted = 0u64;
        for color in 0..2usize {
            for t in 0..mm {
                let up = ((t + 1) % mm) * slice;
                let down = ((t + mm - 1) % mm) * slice;
                let tslice = t * slice;
                for y in 0..ly {
                    let row = tslice + y * lx;
                    let (north, south) = if ly > 1 {
                        (
                            tslice + ((y + 1) % ly) * lx,
                            tslice + ((y + ly - 1) % ly) * lx,
                        )
                    } else {
                        (0, 0)
                    };
                    let x0 = (color + y + t) % 2;
                    for x in (x0..lx).step_by(2) {
                        let xp = if x + 1 == lx { 0 } else { x + 1 };
                        let xm = if x == 0 { lx - 1 } else { x - 1 };
                        let i = row + x;
                        let w = words[i];
                        let pl = Planes::gather(
                            ly,
                            words[row + xp],
                            words[row + xm],
                            words[north + x],
                            words[south + x],
                            words[up + y * lx + x],
                            words[down + y * lx + x],
                        );
                        rng.fill_u64(rbuf);
                        let flip = resolve_word(w, pl, rbuf, |_, idx| table.get(idx)) & lane_mask;
                        words[i] = w ^ flip;
                        accepted += u64::from(flip.count_ones());
                    }
                }
            }
        }
        self.metrics
            .add(self.id_proposed, (slice * mm * lanes) as u64);
        self.metrics.add(self.id_accepted, accepted);
        if accepted > 0 {
            self.spins_dirty = true;
        }
    }

    /// Measure every lane into `out` (cleared first). Per-lane bond sums
    /// come from 64×64 bit transposes plus popcounts, and each entry is
    /// bit-identical to [`SerialTfim::measure`] on the same
    /// configuration.
    pub fn measure_into(&self, out: &mut Vec<TfimMeasurement>) {
        let _span = qmc_obs::span("tfim.packed_measure");
        out.clear();
        let (ups, sps, tts) = lane_counts(&self.model, &self.lat);
        for lane in 0..self.lat.lanes() {
            out.push(lane_measurement(
                &self.c,
                &self.model,
                ups[lane],
                sps[lane],
                tts[lane],
            ));
        }
    }

    /// Measure every lane (allocating convenience wrapper).
    pub fn measure_all(&self) -> Vec<TfimMeasurement> {
        let mut out = Vec::with_capacity(self.lat.lanes());
        self.measure_into(&mut out);
        out
    }

    /// Thermalize then record `sweeps` measurements per lane.
    pub fn run<R: Rng64>(&mut self, rng: &mut R, therm: usize, sweeps: usize) -> Vec<TfimSeries> {
        for _ in 0..therm {
            self.metropolis_sweep(rng);
        }
        let mut series: Vec<TfimSeries> = (0..self.lat.lanes())
            .map(|_| TfimSeries::default())
            .collect();
        let mut meas = Vec::with_capacity(self.lat.lanes());
        for _ in 0..sweeps {
            self.metropolis_sweep(rng);
            self.measure_into(&mut meas);
            for (s, m) in series.iter_mut().zip(&meas) {
                s.record(m);
            }
        }
        series
    }
}

impl SerialTfim {
    /// Batch a set of independent scalar engines through the bit-packed
    /// sweep path: pack one engine per lane, run `sweeps` packed
    /// checkerboard sweeps, and hand the configurations back. Returns the
    /// packed `(accepted, proposed)` counters.
    ///
    /// The scalar per-engine path is untouched (and remains bit-identical
    /// under fixed seeds); this driver samples the same distribution
    /// roughly an order of magnitude faster per site update.
    pub fn sweep_packed<R: Rng64>(
        engines: &mut [SerialTfim],
        rng: &mut R,
        sweeps: usize,
    ) -> (u64, u64) {
        let mut packed = PackedReplicas::from_engines(engines);
        for _ in 0..sweeps {
            packed.metropolis_sweep(rng);
        }
        packed.unpack_into_engines(engines);
        (packed.accepted(), packed.proposed())
    }
}

impl PackedReplicas {
    fn save_words(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.lat.lanes() as u64);
        enc.u64(self.lat.cells() as u64);
        enc.u64s(self.lat.words());
    }

    fn load_words(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let lanes = dec.u64()? as usize;
        let cells = dec.u64()? as usize;
        if lanes != self.lat.lanes() || cells != self.lat.cells() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "packed tfim: engine is {}×{} (cells×lanes), checkpoint is {cells}×{lanes}",
                self.lat.cells(),
                self.lat.lanes()
            )));
        }
        let words = dec.u64s()?;
        if words.len() != cells {
            return Err(qmc_ckpt::CkptError::corrupt(
                "packed tfim: word count does not match header",
            ));
        }
        let mask = self.lat.lane_mask();
        if words.iter().any(|&w| w & !mask != 0) {
            return Err(qmc_ckpt::CkptError::corrupt(
                "packed tfim: inactive lane bits set in checkpoint",
            ));
        }
        self.lat.words_mut().copy_from_slice(&words);
        Ok(())
    }
}

impl qmc_ckpt::Checkpoint for PackedReplicas {
    fn kind(&self) -> &'static str {
        "engine.tfim.packed"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        self.save_words(enc);
        qmc_ckpt::registry::save_registry(enc, &self.metrics);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.load_words(dec)?;
        self.spins_dirty = true;
        qmc_ckpt::registry::load_registry(dec, &mut self.metrics)
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut s = qmc_ckpt::DirtySections::new();
        s.push("spins", self.spins_dirty);
        s.push("metrics", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        match name {
            "spins" => self.save_words(enc),
            "metrics" => qmc_ckpt::registry::save_registry(enc, &self.metrics),
            _ => panic!("engine.tfim.packed has no checkpoint section {name:?}"),
        }
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        match name {
            "spins" => {
                self.load_words(dec)?;
                self.spins_dirty = true;
                Ok(())
            }
            "metrics" => qmc_ckpt::registry::load_registry(dec, &mut self.metrics),
            _ => Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            }),
        }
    }

    fn mark_clean(&mut self) {
        self.spins_dirty = false;
    }
}

/// Per-lane measurement series of a packed batch, checkpointable as one
/// unit: lane `i`'s sections are prefixed `l{i}/`, so the chunked dirty
/// tracking of each [`TfimSeries`] (only new row chunks re-write) carries
/// over to delta checkpoints of the whole batch.
#[derive(Debug, Clone, Default)]
pub struct PackedSeries {
    /// One series per lane.
    pub lanes: Vec<TfimSeries>,
}

impl PackedSeries {
    /// Empty series for `lanes` replicas.
    pub fn new(lanes: usize) -> Self {
        Self {
            lanes: (0..lanes).map(|_| TfimSeries::default()).collect(),
        }
    }

    /// Record one measurement per lane.
    pub fn record(&mut self, meas: &[TfimMeasurement]) {
        assert_eq!(meas.len(), self.lanes.len(), "measurement count != lanes");
        for (s, m) in self.lanes.iter_mut().zip(meas) {
            s.record(m);
        }
    }
}

fn parse_lane_section(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix('l')?;
    let (lane, section) = rest.split_once('/')?;
    Some((lane.parse().ok()?, section))
}

impl qmc_ckpt::Checkpoint for PackedSeries {
    fn kind(&self) -> &'static str {
        "series.tfim.packed"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.lanes.len() as u64);
        for s in &self.lanes {
            enc.state(s);
        }
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let n = dec.u64()? as usize;
        if n != self.lanes.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "packed series: have {} lanes, checkpoint has {n}",
                self.lanes.len()
            )));
        }
        for s in &mut self.lanes {
            dec.load_state(s)?;
        }
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut out = qmc_ckpt::DirtySections::new();
        for (i, s) in self.lanes.iter().enumerate() {
            for (name, dirty) in s.dirty_sections().iter() {
                out.push(format!("l{i}/{name}"), dirty);
            }
        }
        out
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        let (lane, section) = parse_lane_section(name)
            .unwrap_or_else(|| panic!("series.tfim.packed has no checkpoint section {name:?}"));
        self.lanes[lane].save_section(section, enc);
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        let Some((lane, section)) = parse_lane_section(name) else {
            return Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            });
        };
        if lane >= self.lanes.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "packed series: section for lane {lane} of {}",
                self.lanes.len()
            )));
        }
        self.lanes[lane].load_section(section, dec)
    }

    fn mark_clean(&mut self) {
        for s in &mut self.lanes {
            s.mark_clean();
        }
    }
}

/// Parallel-tempering ladder over β with one rung per lane: every rung
/// advances through the shared packed sweep kernel (per-lane threshold
/// tables, since each β has its own couplings), and adjacent rungs
/// exchange configurations with a bitwise lane swap.
#[derive(Debug, Clone)]
pub struct PackedTfimLadder {
    model: TfimModel,
    cs: Vec<StCouplings>,
    tables: Vec<[u32; 64]>,
    lat: PackedLattice,
    rbuf: Vec<u64>,
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    /// Swap acceptance counters per adjacent pair `(k, k+1)`.
    swap_accepted: Vec<u64>,
    swap_attempted: Vec<u64>,
    /// Alternating exchange phase (even pairs, then odd pairs).
    phase: usize,
    spins_dirty: bool,
}

impl PackedTfimLadder {
    /// Ladder with one rung per entry of `betas` (2..=64 rungs); `model`
    /// supplies the lattice and couplings template, its `beta` field is
    /// replaced per rung.
    pub fn new(model: TfimModel, betas: &[f64]) -> Self {
        assert!((2..=64).contains(&betas.len()), "ladder needs 2..=64 rungs");
        assert!(betas.iter().all(|&b| b > 0.0), "β must be positive");
        let model = model.validated();
        let cells = model.lx * model.ly * model.m;
        let k_sp = if model.ly > 1 { 4 } else { 2 };
        let cs: Vec<StCouplings> = betas
            .iter()
            .map(|&beta| TfimModel { beta, ..model }.couplings())
            .collect();
        // Padded to 64 rows (zero thresholds beyond the last rung): the
        // resolver visits every bit lane and the inactive ones are masked
        // off afterwards, so the per-lane table lookup stays branch-free.
        let mut tables: Vec<[u32; 64]> = cs
            .iter()
            .map(|c| PackedAcceptTable::new(c, k_sp).row())
            .collect();
        tables.resize(64, [0u32; 64]);
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        Self {
            model,
            cs,
            tables,
            lat: PackedLattice::new(cells, betas.len()),
            rbuf: vec![0; DRAWS_PER_WORD],
            metrics,
            id_accepted,
            id_proposed,
            swap_accepted: vec![0; betas.len().saturating_sub(1)],
            swap_attempted: vec![0; betas.len().saturating_sub(1)],
            phase: 0,
            spins_dirty: true,
        }
    }

    /// Number of rungs.
    pub fn rungs(&self) -> usize {
        self.lat.lanes()
    }

    /// The couplings of rung `k`.
    pub fn couplings(&self, k: usize) -> &StCouplings {
        &self.cs[k]
    }

    /// Swap acceptance rate of the pair `(k, k+1)`.
    pub fn swap_rate(&self, k: usize) -> f64 {
        self.swap_accepted[k] as f64 / self.swap_attempted[k].max(1) as f64
    }

    /// One packed checkerboard sweep advancing every rung (per-lane
    /// acceptance tables; otherwise identical to
    /// [`PackedReplicas::metropolis_sweep`]).
    #[qmc_hot::hot]
    pub fn metropolis_sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("tfim.packed_ladder_sweep");
        let m = self.model;
        let (lx, ly, mm) = (m.lx, m.ly, m.m);
        let slice = lx * ly;
        let lanes = self.lat.lanes();
        let lane_mask = self.lat.lane_mask();
        let tables = &self.tables[..64];
        let rbuf = &mut self.rbuf[..DRAWS_PER_WORD];
        let words = self.lat.words_mut();
        let mut accepted = 0u64;
        for color in 0..2usize {
            for t in 0..mm {
                let up = ((t + 1) % mm) * slice;
                let down = ((t + mm - 1) % mm) * slice;
                let tslice = t * slice;
                for y in 0..ly {
                    let row = tslice + y * lx;
                    let (north, south) = if ly > 1 {
                        (
                            tslice + ((y + 1) % ly) * lx,
                            tslice + ((y + ly - 1) % ly) * lx,
                        )
                    } else {
                        (0, 0)
                    };
                    let x0 = (color + y + t) % 2;
                    for x in (x0..lx).step_by(2) {
                        let xp = if x + 1 == lx { 0 } else { x + 1 };
                        let xm = if x == 0 { lx - 1 } else { x - 1 };
                        let i = row + x;
                        let w = words[i];
                        let pl = Planes::gather(
                            ly,
                            words[row + xp],
                            words[row + xm],
                            words[north + x],
                            words[south + x],
                            words[up + y * lx + x],
                            words[down + y * lx + x],
                        );
                        rng.fill_u64(rbuf);
                        let flip =
                            resolve_word(w, pl, rbuf, |j, idx| tables[j][idx & 63]) & lane_mask;
                        words[i] = w ^ flip;
                        accepted += u64::from(flip.count_ones());
                    }
                }
            }
        }
        self.metrics
            .add(self.id_proposed, (slice * mm * lanes) as u64);
        self.metrics.add(self.id_accepted, accepted);
        if accepted > 0 {
            self.spins_dirty = true;
        }
    }

    /// One replica-exchange phase: alternating even/odd adjacent pairs.
    /// Accepted swaps exchange the two rungs' configurations with a
    /// bitwise lane swap over every word; the acceptance uses the exact
    /// action difference from per-lane bond sums:
    /// `Δ = (K_s' − K_s)·ΔΣSP + (K_τ' − K_τ)·ΔΣT`, `P = min(1, e^{−Δ})`.
    pub fn exchange<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("tfim.packed_ladder_exchange");
        let (_, sps, tts) = lane_counts(&self.model, &self.lat);
        let lanes = self.lat.lanes();
        let phase = self.phase;
        self.phase ^= 1;
        let mut k = phase;
        while k + 1 < lanes {
            let (a, b) = (k, k + 1);
            // Equal-bond counts and signed bond sums differ by an
            // affine map with equal offsets, so the *differences* agree.
            let dsp = 2.0 * (sps[b] as f64 - sps[a] as f64);
            let dtt = 2.0 * (tts[b] as f64 - tts[a] as f64);
            let delta = (self.cs[b].k_space - self.cs[a].k_space) * dsp
                + (self.cs[b].k_time - self.cs[a].k_time) * dtt;
            self.swap_attempted[a] += 1;
            if rng.metropolis((-delta).exp()) {
                self.swap_accepted[a] += 1;
                for w in self.lat.words_mut() {
                    let x = ((*w >> a) ^ (*w >> b)) & 1;
                    *w ^= (x << a) | (x << b);
                }
                self.spins_dirty = true;
            }
            k += 2;
        }
    }

    /// Measure every rung with its own couplings.
    pub fn measure_into(&self, out: &mut Vec<TfimMeasurement>) {
        out.clear();
        let (ups, sps, tts) = lane_counts(&self.model, &self.lat);
        for lane in 0..self.lat.lanes() {
            out.push(lane_measurement(
                &self.cs[lane],
                &self.model,
                ups[lane],
                sps[lane],
                tts[lane],
            ));
        }
    }

    /// Thermalize then record `sweeps` measurements per rung, with one
    /// exchange phase after every sweep.
    pub fn run<R: Rng64>(&mut self, rng: &mut R, therm: usize, sweeps: usize) -> Vec<TfimSeries> {
        for _ in 0..therm {
            self.metropolis_sweep(rng);
            self.exchange(rng);
        }
        let mut series: Vec<TfimSeries> = (0..self.lat.lanes())
            .map(|_| TfimSeries::default())
            .collect();
        let mut meas = Vec::with_capacity(self.lat.lanes());
        for _ in 0..sweeps {
            self.metropolis_sweep(rng);
            self.exchange(rng);
            self.measure_into(&mut meas);
            for (s, m) in series.iter_mut().zip(&meas) {
                s.record(m);
            }
        }
        series
    }
}

/// Spatially packed single-replica TFIM engine: bit `j` of word `k` in a
/// row is the spin at `x = 64·k + j`, so one word update advances 32
/// checkerboard-active sites. Requires `lx % 64 == 0` (check with
/// [`Self::supports`]); replica packing is the general-purpose mode.
#[derive(Debug, Clone)]
pub struct PackedSpatialTfim {
    model: TfimModel,
    c: StCouplings,
    /// `lx/64 · ly · m` words, 64 sites each.
    lat: PackedLattice,
    table: PackedAcceptTable,
    rbuf: Vec<u64>,
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    spins_dirty: bool,
}

impl PackedSpatialTfim {
    /// True when the model's layout admits spatial packing.
    pub fn supports(model: &TfimModel) -> bool {
        model.lx.is_multiple_of(64)
    }

    /// Fresh fully-aligned engine (panics unless [`Self::supports`]).
    pub fn new(model: TfimModel) -> Self {
        let model = model.validated();
        assert!(
            Self::supports(&model),
            "spatial packing needs lx % 64 == 0 (lx = {}); use PackedReplicas",
            model.lx
        );
        let c = model.couplings();
        let k_sp = if model.ly > 1 { 4 } else { 2 };
        let words = (model.lx / 64) * model.ly * model.m;
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        Self {
            model,
            c,
            lat: PackedLattice::new(words, 64),
            table: PackedAcceptTable::new(&c, k_sp),
            rbuf: vec![0; DRAWS_PER_WORD / 2],
            metrics,
            id_accepted,
            id_proposed,
            spins_dirty: true,
        }
    }

    /// Model parameters.
    pub fn model(&self) -> &TfimModel {
        &self.model
    }

    /// Metropolis proposals accepted so far.
    pub fn accepted(&self) -> u64 {
        self.metrics.value(self.id_accepted)
    }

    /// Metropolis proposals made so far.
    pub fn proposed(&self) -> u64 {
        self.metrics.value(self.id_proposed)
    }

    #[inline]
    fn word_of(&self, x: usize, y: usize, t: usize) -> (usize, usize) {
        let wpr = self.model.lx / 64;
        ((t * self.model.ly + y) * wpr + x / 64, x % 64)
    }

    /// Load a scalar configuration (layout `(t·ly + y)·lx + x`, ±1).
    pub fn load_config(&mut self, spins: &[i8]) {
        let m = self.model;
        assert_eq!(spins.len(), m.lx * m.ly * m.m, "configuration length");
        for t in 0..m.m {
            for y in 0..m.ly {
                for x in 0..m.lx {
                    let (w, b) = self.word_of(x, y, t);
                    self.lat.set(w, b, spins[(t * m.ly + y) * m.lx + x]);
                }
            }
        }
        self.spins_dirty = true;
    }

    /// Extract the scalar configuration.
    pub fn extract_config(&self, out: &mut [i8]) {
        let m = self.model;
        assert_eq!(out.len(), m.lx * m.ly * m.m, "configuration length");
        for t in 0..m.m {
            for y in 0..m.ly {
                for x in 0..m.lx {
                    let (w, b) = self.word_of(x, y, t);
                    out[(t * m.ly + y) * m.lx + x] = self.lat.get(w, b);
                }
            }
        }
    }

    /// One bitwise checkerboard sweep: each word update resolves its 32
    /// active-parity sites with 16 draws from one batched fill (two
    /// 32-bit decision lanes per draw, consecutive active sites taking
    /// the low then the high half). The x±1 neighbours come from shifts
    /// with carries across adjacent words (periodic wrap within the row).
    #[qmc_hot::hot]
    pub fn metropolis_sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("tfim.packed_spatial_sweep");
        let m = self.model;
        let (ly, mm) = (m.ly, m.m);
        let wpr = m.lx / 64;
        let slice = wpr * ly;
        let table = self.table;
        let rbuf = &mut self.rbuf[..DRAWS_PER_WORD / 2];
        let words = self.lat.words_mut();
        let mut accepted = 0u64;
        for color in 0..2usize {
            for t in 0..mm {
                let up = ((t + 1) % mm) * slice;
                let down = ((t + mm - 1) % mm) * slice;
                let tslice = t * slice;
                for y in 0..ly {
                    let row = tslice + y * wpr;
                    let (north, south) = if ly > 1 {
                        (
                            tslice + ((y + 1) % ly) * wpr,
                            tslice + ((y + ly - 1) % ly) * wpr,
                        )
                    } else {
                        (0, 0)
                    };
                    // Bit parity equals x parity (64 | lx), so one parity
                    // selects this row's checkerboard-active sites.
                    let par = (color + y + t) % 2;
                    for k in 0..wpr {
                        let i = row + k;
                        let w = words[i];
                        let nxt = words[row + if k + 1 == wpr { 0 } else { k + 1 }];
                        let prv = words[row + if k == 0 { wpr - 1 } else { k - 1 }];
                        let east = (w >> 1) | (nxt << 63);
                        let west = (w << 1) | (prv >> 63);
                        let pl = Planes::gather(
                            ly,
                            east,
                            west,
                            words[north + k],
                            words[south + k],
                            words[up + y * wpr + k],
                            words[down + y * wpr + k],
                        );
                        rng.fill_u64(rbuf);
                        let (mut sw, mut q0, mut q1, mut q2, mut u0, mut u1) = (
                            w >> par,
                            pl.s0 >> par,
                            pl.s1 >> par,
                            pl.s2 >> par,
                            pl.t0 >> par,
                            pl.t1 >> par,
                        );
                        let mut flip = 0u64;
                        let mut bit = 1u64 << par;
                        for &r in rbuf.iter() {
                            let idx = ((sw & 1)
                                | (q0 & 1) << 1
                                | (q1 & 1) << 2
                                | (q2 & 1) << 3
                                | (u0 & 1) << 4
                                | (u1 & 1) << 5) as usize;
                            flip |= (((r as u32) <= table.get(idx)) as u64).wrapping_mul(bit);
                            sw >>= 2;
                            q0 >>= 2;
                            q1 >>= 2;
                            q2 >>= 2;
                            u0 >>= 2;
                            u1 >>= 2;
                            bit <<= 2;
                            let idx = ((sw & 1)
                                | (q0 & 1) << 1
                                | (q1 & 1) << 2
                                | (q2 & 1) << 3
                                | (u0 & 1) << 4
                                | (u1 & 1) << 5) as usize;
                            flip |=
                                ((((r >> 32) as u32) <= table.get(idx)) as u64).wrapping_mul(bit);
                            sw >>= 2;
                            q0 >>= 2;
                            q1 >>= 2;
                            q2 >>= 2;
                            u0 >>= 2;
                            u1 >>= 2;
                            bit <<= 2;
                        }
                        words[i] = w ^ flip;
                        accepted += u64::from(flip.count_ones());
                    }
                }
            }
        }
        self.metrics.add(self.id_proposed, (slice * mm * 64) as u64);
        self.metrics.add(self.id_accepted, accepted);
        if accepted > 0 {
            self.spins_dirty = true;
        }
    }

    /// Measure the configuration (popcount bond sums; bit-identical to
    /// [`SerialTfim::measure`] on the same configuration).
    pub fn measure(&self) -> TfimMeasurement {
        let m = self.model;
        let (ly, mm) = (m.ly, m.m);
        let wpr = m.lx / 64;
        let slice = wpr * ly;
        let words = self.lat.words();
        let (mut up_cnt, mut speq, mut teq) = (0u64, 0u64, 0u64);
        for t in 0..mm {
            let tslice = t * slice;
            let tup = ((t + 1) % mm) * slice;
            for y in 0..ly {
                let row = tslice + y * wpr;
                let north = tslice + ((y + 1) % ly) * wpr;
                for k in 0..wpr {
                    let w = words[row + k];
                    up_cnt += u64::from(w.count_ones());
                    let nxt = words[row + if k + 1 == wpr { 0 } else { k + 1 }];
                    let east = (w >> 1) | (nxt << 63);
                    speq += u64::from((!(w ^ east)).count_ones());
                    if ly > 1 {
                        speq += u64::from((!(w ^ words[north + k])).count_ones());
                    }
                    teq += u64::from((!(w ^ words[tup + y * wpr + k])).count_ones());
                }
            }
        }
        lane_measurement(&self.c, &self.model, up_cnt, speq, teq)
    }

    /// Thermalize then record `sweeps` measurements.
    pub fn run<R: Rng64>(&mut self, rng: &mut R, therm: usize, sweeps: usize) -> TfimSeries {
        for _ in 0..therm {
            self.metropolis_sweep(rng);
        }
        let mut series = TfimSeries::default();
        for _ in 0..sweeps {
            self.metropolis_sweep(rng);
            series.record(&self.measure());
        }
        series
    }
}

impl qmc_ckpt::Checkpoint for PackedSpatialTfim {
    fn kind(&self) -> &'static str {
        "engine.tfim.packed-spatial"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64s(self.lat.words());
        qmc_ckpt::registry::save_registry(enc, &self.metrics);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let words = dec.u64s()?;
        if words.len() != self.lat.cells() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "packed spatial tfim: engine has {} words, checkpoint has {}",
                self.lat.cells(),
                words.len()
            )));
        }
        self.lat.words_mut().copy_from_slice(&words);
        self.spins_dirty = true;
        qmc_ckpt::registry::load_registry(dec, &mut self.metrics)
    }
}

/// Replica-packed distributed TFIM engine: the spatial block decomposition
/// of [`crate::parallel::DistTfim`] with one packed word (all lanes) per
/// cell. Halo exchange moves boundary *words* — 8 bytes per cell carrying
/// all 64 replicas — through the same persistent caller-owned buffers.
pub struct PackedDistTfim {
    model: TfimModel,
    c: StCouplings,
    sub: Subdomain,
    rank: usize,
    lat: PackedLattice,
    slice_stride: usize,
    table: PackedAcceptTable,
    rbuf: Vec<u64>,
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    send_buf: Vec<u8>,
    recv_buf: Vec<u8>,
    halo: Vec<PackedHaloDir>,
}

/// Precomputed halo plan for one mesh direction (packed variant: the
/// payload is `u64` words, 8 bytes per strip cell per slice).
struct PackedHaloDir {
    neighbor: usize,
    from: usize,
    tag: u32,
    send_idx: Vec<usize>,
    recv_idx: Vec<usize>,
    bytes_ctr: CounterId,
}

impl PackedDistTfim {
    /// Build the rank-local state (collective) for `lanes` replicas.
    pub fn new<C: Communicator>(model: TfimModel, lanes: usize, comm: &C) -> Self {
        let model = model.validated();
        let grid = grid_for(&model, comm.size());
        assert_eq!(grid.size(), comm.size(), "grid/communicator size mismatch");
        let decomp = Decomposition::new(model.lx, model.ly, grid);
        let sub = decomp.subdomain(comm.rank());
        let slice_stride = sub.padded_len();
        let c = model.couplings();
        let k_sp = if model.ly > 1 { 4 } else { 2 };
        let strip = sub.w.max(sub.h) * model.m * 8;
        let rank = comm.rank();
        let dirs: &[Dir] = if model.ly == 1 {
            &[Dir::East, Dir::West]
        } else {
            &Dir::ALL
        };
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        let halo = dirs
            .iter()
            .map(|&dir| PackedHaloDir {
                neighbor: grid.neighbor(rank, dir),
                from: grid.neighbor(rank, dir.opposite()),
                tag: 120 + dir_id(dir),
                send_idx: sub.send_strip(dir),
                recv_idx: sub.recv_strip(dir.opposite()),
                bytes_ctr: metrics.counter(dir_bytes_counter(dir)),
            })
            .collect();
        Self {
            model,
            c,
            sub,
            rank,
            lat: PackedLattice::new(slice_stride * model.m, lanes),
            slice_stride,
            table: PackedAcceptTable::new(&c, k_sp),
            rbuf: vec![0; DRAWS_PER_WORD],
            metrics,
            id_accepted,
            id_proposed,
            send_buf: Vec::with_capacity(strip),
            recv_buf: Vec::with_capacity(strip),
            halo,
        }
    }

    /// Number of packed replicas.
    pub fn lanes(&self) -> usize {
        self.lat.lanes()
    }

    /// The block this rank owns.
    pub fn subdomain(&self) -> Subdomain {
        self.sub
    }

    /// This rank's engine metrics (acceptance + halo byte counters).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Exchange ghost frames: one aggregated message per direction, each
    /// boundary cell serialized as an 8-byte little-endian word carrying
    /// every lane. Allocation-free in steady state (persistent buffers,
    /// precomputed strips, [`Communicator::sendrecv_bytes_into`]).
    pub fn halo_exchange<C: Communicator>(&mut self, comm: &mut C) {
        let _span = qmc_obs::span("tfim.packed_halo_exchange");
        let halo = std::mem::take(&mut self.halo);
        let mut send = std::mem::take(&mut self.send_buf);
        let mut recv = std::mem::take(&mut self.recv_buf);
        let words = self.lat.words_mut();
        for hd in &halo {
            send.clear();
            for t in 0..self.model.m {
                let base = t * self.slice_stride;
                for &i in &hd.send_idx {
                    send.extend_from_slice(&words[base + i].to_le_bytes());
                }
            }

            let incoming: &[u8] = if hd.neighbor == self.rank && hd.from == self.rank {
                &send
            } else {
                self.metrics.add(hd.bytes_ctr, send.len() as u64);
                comm.sendrecv_bytes_into(hd.neighbor, hd.tag, &send, hd.from, hd.tag, &mut recv);
                &recv
            };

            assert_eq!(
                incoming.len(),
                hd.recv_idx.len() * self.model.m * 8,
                "packed halo payload size mismatch"
            );
            let mut chunks = incoming.chunks_exact(8);
            for t in 0..self.model.m {
                let base = t * self.slice_stride;
                for &i in &hd.recv_idx {
                    let bytes: [u8; 8] = chunks.next().expect("sized above").try_into().expect("8");
                    words[base + i] = u64::from_le_bytes(bytes);
                }
            }
        }
        self.halo = halo;
        self.send_buf = send;
        self.recv_buf = recv;
    }

    /// Update every interior site of global parity `color` across all
    /// lanes; returns the number of per-lane proposals.
    #[qmc_hot::hot]
    fn half_sweep<R: Rng64>(&mut self, color: usize, rng: &mut R) -> u64 {
        let m = self.model;
        let sub = self.sub;
        let w2 = sub.w + 2;
        let lanes = self.lat.lanes();
        let lane_mask = self.lat.lane_mask();
        let table = self.table;
        let rbuf = &mut self.rbuf[..DRAWS_PER_WORD];
        let words = self.lat.words_mut();
        let mut proposals = 0u64;
        let mut accepted = 0u64;
        for t in 0..m.m {
            let base = t * self.slice_stride;
            let up = ((t + 1) % m.m) * self.slice_stride;
            let down = ((t + m.m - 1) % m.m) * self.slice_stride;
            for iy in 0..sub.h {
                let gy = sub.y0 + iy;
                for ix in 0..sub.w {
                    let gx = sub.x0 + ix;
                    if (gx + gy + t) % 2 != color {
                        continue;
                    }
                    let li = sub.local(ix as isize, iy as isize);
                    let w = words[base + li];
                    let pl = Planes::gather(
                        m.ly,
                        words[base + li + 1],
                        words[base + li - 1],
                        words[base + li + w2],
                        words[base + li - w2],
                        words[up + li],
                        words[down + li],
                    );
                    rng.fill_u64(rbuf);
                    let flip = resolve_word(w, pl, rbuf, |_, idx| table.get(idx)) & lane_mask;
                    words[base + li] = w ^ flip;
                    proposals += lanes as u64;
                    accepted += u64::from(flip.count_ones());
                }
            }
        }
        self.metrics.add(self.id_proposed, proposals);
        self.metrics.add(self.id_accepted, accepted);
        proposals
    }

    /// One full sweep: two parity halves, each followed by a halo
    /// exchange; per-lane site updates are charged to the communicator.
    #[qmc_hot::hot]
    pub fn sweep<C: Communicator, R: Rng64>(&mut self, comm: &mut C, rng: &mut R) {
        let _span = qmc_obs::span("tfim.packed_dist_sweep");
        for color in 0..2 {
            let proposals = self.half_sweep(color, rng);
            comm.compute(proposals as f64 * FLOPS_PER_UPDATE);
            self.halo_exchange(comm);
        }
    }

    /// Measure every lane globally (collective; identical on all ranks).
    pub fn measure_into<C: Communicator>(&self, comm: &mut C, out: &mut Vec<TfimMeasurement>) {
        let _span = qmc_obs::span("tfim.packed_measure");
        let m = self.model;
        let sub = self.sub;
        let w2 = sub.w + 2;
        let lanes = self.lat.lanes();
        let mask = self.lat.lane_mask();
        let words = self.lat.words();
        let mut ups = LaneCounter::new();
        let mut speq = LaneCounter::new();
        let mut teq = LaneCounter::new();
        for t in 0..m.m {
            let base = t * self.slice_stride;
            let up = ((t + 1) % m.m) * self.slice_stride;
            for iy in 0..sub.h {
                for ix in 0..sub.w {
                    let li = sub.local(ix as isize, iy as isize);
                    let w = words[base + li];
                    ups.push(w);
                    speq.push(!(w ^ words[base + li + 1]) & mask);
                    if m.ly > 1 {
                        speq.push(!(w ^ words[base + li + w2]) & mask);
                    }
                    teq.push(!(w ^ words[up + li]) & mask);
                }
            }
        }
        let (u, s, tt) = (ups.finish(), speq.finish(), teq.finish());
        // Local per-lane [up, sp_eq, t_eq] counts → one allreduce.
        let mut local = Vec::with_capacity(3 * lanes);
        for lane in 0..lanes {
            local.push(u[lane] as f64);
            local.push(s[lane] as f64);
            local.push(tt[lane] as f64);
        }
        let global = comm.allreduce_f64(&local, ReduceOp::Sum);
        out.clear();
        for lane in 0..lanes {
            out.push(lane_measurement(
                &self.c,
                &self.model,
                global[3 * lane] as u64,
                global[3 * lane + 1] as u64,
                global[3 * lane + 2] as u64,
            ));
        }
    }

    /// Thermalize and run, recording one measurement per lane per sweep
    /// (identical series on every rank).
    pub fn run<C: Communicator, R: Rng64>(
        &mut self,
        comm: &mut C,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
    ) -> Vec<TfimSeries> {
        self.halo_exchange(comm);
        for _ in 0..therm {
            self.sweep(comm, rng);
        }
        let mut series: Vec<TfimSeries> = (0..self.lat.lanes())
            .map(|_| TfimSeries::default())
            .collect();
        let mut meas = Vec::with_capacity(self.lat.lanes());
        for _ in 0..sweeps {
            self.sweep(comm, rng);
            self.measure_into(comm, &mut meas);
            for (sr, mm) in series.iter_mut().zip(&meas) {
                sr.record(mm);
            }
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_ckpt::Checkpoint;
    use qmc_comm::run_threads;
    use qmc_rng::{StreamFactory, Xoshiro256StarStar};
    use qmc_stats::BinningAnalysis;

    fn chain(lx: usize, h: f64, beta: f64, m: usize) -> TfimModel {
        TfimModel {
            lx,
            ly: 1,
            j: 1.0,
            h,
            beta,
            m,
        }
    }

    fn square(l: usize, h: f64, beta: f64, m: usize) -> TfimModel {
        TfimModel {
            lx: l,
            ly: l,
            j: 1.0,
            h,
            beta,
            m,
        }
    }

    /// Pool per-lane series: mean of lane means, error from per-lane
    /// binning errors of independent lanes.
    fn pooled(series: &[TfimSeries], field: fn(&TfimSeries) -> &Vec<f64>) -> (f64, f64) {
        let n = series.len() as f64;
        let mut mean = 0.0;
        let mut var = 0.0;
        for s in series {
            let b = BinningAnalysis::new(field(s), 16);
            mean += b.mean;
            var += b.error().powi(2);
        }
        (mean / n, var.sqrt() / n)
    }

    #[test]
    fn threshold_maps_ratios_to_u32_compare() {
        assert_eq!(threshold(1.0), u32::MAX);
        assert_eq!(threshold(2.5), u32::MAX);
        // P(r ≤ thr(0.5)) = (thr+1)/2^32 = 0.5 exactly.
        assert_eq!(threshold(0.5), (1u32 << 31) - 1);
        assert_eq!(threshold(0.0), 0);
        assert!(threshold(0.25) < threshold(0.5));
        // Ratios just below 1 stay strictly below certain acceptance.
        assert!(threshold(1.0 - 1e-12) < u32::MAX);
    }

    /// The byte-spread fast path of [`resolve_word`] reproduces, bit for
    /// bit, the naive per-lane reference: lane `j` takes the low half of
    /// draw `j/2` when even, the high half when odd (the RNG lane
    /// discipline), indexed by its own 6-bit plane pattern.
    #[test]
    fn resolve_word_matches_per_lane_reference() {
        let mut rng = Xoshiro256StarStar::new(99);
        let mut draws = [0u64; DRAWS_PER_WORD];
        // Per-(lane, idx) thresholds spanning the full u32 range.
        let thr =
            |j: usize, idx: usize| ((j as u32) << 26) ^ ((idx as u32).wrapping_mul(0x0421_1593));
        for trial in 0..64 {
            let w = rng.next_u64();
            let pl = Planes {
                s0: rng.next_u64(),
                s1: rng.next_u64(),
                s2: rng.next_u64(),
                t0: rng.next_u64(),
                t1: rng.next_u64(),
            };
            rng.fill_u64(&mut draws);
            let fast = resolve_word(w, pl, &draws, thr);
            let mut expect = 0u64;
            for j in 0..64usize {
                let idx = (((w >> j) & 1)
                    | ((pl.s0 >> j) & 1) << 1
                    | ((pl.s1 >> j) & 1) << 2
                    | ((pl.s2 >> j) & 1) << 3
                    | ((pl.t0 >> j) & 1) << 4
                    | ((pl.t1 >> j) & 1) << 5) as usize;
                let r = if j % 2 == 0 {
                    draws[j / 2] as u32
                } else {
                    (draws[j / 2] >> 32) as u32
                };
                expect |= ((r <= thr(j, idx)) as u64) << j;
            }
            assert_eq!(fast, expect, "trial {trial}");
        }
    }

    #[test]
    fn packed_table_matches_scalar_ratios_over_reachable_domain() {
        for (model, k_sp) in [(chain(8, 1.3, 1.7, 8), 2), (square(4, 2.0, 1.0, 8), 4)] {
            let c = model.couplings();
            let scalar = AcceptTable::new(&c);
            let packed = PackedAcceptTable::new(&c, k_sp);
            for s_bit in 0..2usize {
                let s: i8 = if s_bit == 1 { 1 } else { -1 };
                for u_sp in 0..=k_sp {
                    for u_t in 0..=2usize {
                        let sp = 2 * u_sp as i32 - k_sp as i32;
                        let tp = 2 * u_t as i32 - 2;
                        let idx = s_bit | (u_sp << 1) | (u_t << 4);
                        assert_eq!(
                            packed.get(idx),
                            threshold(scalar.ratio(s, sp, tp)),
                            "s={s} u_sp={u_sp} u_t={u_t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sum4_planes_encode_exact_counts() {
        // Exhaustive over all 16 per-lane input combinations, replicated
        // across lanes with different alignment.
        for pattern in 0..16u64 {
            let a = if pattern & 1 != 0 { !0u64 } else { 0 };
            let b = if pattern & 2 != 0 { !0u64 } else { 0 };
            let c = if pattern & 4 != 0 { !0u64 } else { 0 };
            let d = if pattern & 8 != 0 { !0u64 } else { 0 };
            let (p0, p1, p2) = sum4(a, b, c, d);
            let expect = pattern.count_ones() as u64;
            let got = (p0 & 1) + 2 * (p1 & 1) + 4 * (p2 & 1);
            assert_eq!(got, expect, "pattern {pattern:04b}");
        }
    }

    /// Satellite: pack/unpack round-trips through engines at sizes not
    /// divisible by 64, single-replica worlds, and odd y/t extents (the
    /// checkerboard parity cases), asserting exact configuration
    /// recovery plus bitwise energy agreement per lane.
    #[test]
    fn pack_unpack_roundtrip_and_bitwise_measure_agreement() {
        for (model, lanes) in [
            (chain(6, 1.2, 1.3, 6), 5),    // 36 cells: not divisible by 64
            (chain(4, 0.7, 2.0, 16), 1),   // single-replica world
            (square(4, 1.5, 1.0, 4), 3),   // 64 cells: exactly one block
            (chain(10, 2.0, 0.7, 26), 64), // 260 cells: 4 blocks + tail
        ] {
            // Scramble each scalar engine differently.
            let mut engines: Vec<SerialTfim> = (0..lanes).map(|_| SerialTfim::new(model)).collect();
            for (k, eng) in engines.iter_mut().enumerate() {
                let mut rng = Xoshiro256StarStar::new(1000 + k as u64);
                for _ in 0..8 {
                    eng.metropolis_sweep(&mut rng);
                }
            }
            let originals: Vec<Vec<i8>> =
                engines.iter().map(|e| e.export_spins().to_vec()).collect();

            let packed = PackedReplicas::from_engines(&engines);
            // Round trip: unpack returns exactly what was packed.
            let mut back: Vec<SerialTfim> = (0..lanes).map(|_| SerialTfim::new(model)).collect();
            packed.unpack_into_engines(&mut back);
            for (eng, orig) in back.iter().zip(&originals) {
                assert_eq!(eng.export_spins(), &orig[..]);
            }

            // Bitwise measurement agreement per configuration.
            let meas = packed.measure_all();
            for (eng, pm) in engines.iter().zip(&meas) {
                let sm = eng.measure();
                assert_eq!(sm.energy_per_site.to_bits(), pm.energy_per_site.to_bits());
                assert_eq!(sm.abs_m.to_bits(), pm.abs_m.to_bits());
                assert_eq!(sm.m2.to_bits(), pm.m2.to_bits());
                assert_eq!(sm.sigma_x.to_bits(), pm.sigma_x.to_bits());
            }
        }
    }

    #[test]
    fn packed_replicas_match_ed_pooled() {
        // 16 replicas of the L=4 near-critical chain, pooled against the
        // exact-diagonalization oracle.
        let model = chain(4, 1.0, 1.0, 16);
        let mut packed = PackedReplicas::new(model, 16);
        let mut rng = Xoshiro256StarStar::new(42);
        let series = packed.run(&mut rng, 1500, 4000);

        let lat = qmc_lattice::Chain::new(4);
        let exact = qmc_ed::tfim::thermal(&lat, &qmc_ed::tfim::TfimParams { j: 1.0, h: 1.0 }, 1.0);
        let (e, de) = pooled(&series, |s| &s.energy);
        let trotter = (1.0f64 / 16.0).powi(2) * 2.0;
        assert!(
            (e - exact.energy / 4.0).abs() < 4.0 * de.max(2e-4) + trotter,
            "E {e} ± {de} vs {}",
            exact.energy / 4.0
        );
        let (sx, dsx) = pooled(&series, |s| &s.sigma_x);
        assert!(
            (sx - exact.sx).abs() < 4.0 * dsx.max(2e-4) + trotter,
            "σx {sx} ± {dsx} vs {}",
            exact.sx
        );
        let rate = packed.acceptance_rate();
        assert!(rate > 0.05 && rate < 0.95, "acceptance {rate}");
    }

    #[test]
    fn packed_square_lattice_matches_scalar_means() {
        // 2-D model: packed (4 spatial neighbours → sum4 path) vs the
        // scalar engine, distribution level.
        let model = square(4, 2.5, 1.0, 8);
        let mut packed = PackedReplicas::new(model, 8);
        let mut rng = Xoshiro256StarStar::new(7);
        let pseries = packed.run(&mut rng, 800, 3000);
        let (pe, pde) = pooled(&pseries, |s| &s.energy);

        let mut scalar = SerialTfim::new(model);
        let mut srng = Xoshiro256StarStar::new(8);
        let sseries = scalar.run(&mut srng, 1500, 15_000, 0);
        let bs = BinningAnalysis::new(&sseries.energy, 16);
        let err = (pde.powi(2) + bs.error().powi(2)).sqrt().max(5e-4);
        assert!(
            (pe - bs.mean).abs() < 5.0 * err,
            "packed {pe} ± {pde} vs scalar {} ± {}",
            bs.mean,
            bs.error()
        );
    }

    #[test]
    fn sweep_packed_batches_scalar_engines() {
        let model = chain(8, 1.2, 1.5, 16);
        let mut engines: Vec<SerialTfim> = (0..8).map(|_| SerialTfim::new(model)).collect();
        let mut rng = Xoshiro256StarStar::new(3);
        let (accepted, proposed) = SerialTfim::sweep_packed(&mut engines, &mut rng, 500);
        assert_eq!(proposed, 500 * 8 * 128);
        assert!(accepted > 0 && accepted < proposed);
        // The batch leaves every engine in a valid, decorrelated state:
        // measurements are finite and the engines differ pairwise.
        let spins0 = engines[0].export_spins().to_vec();
        assert!(engines[1..].iter().any(|e| e.export_spins() != &spins0[..]));
        for eng in &engines {
            assert!(eng.measure().energy_per_site.is_finite());
        }
    }

    #[test]
    fn packed_ladder_rungs_match_ed() {
        let model = chain(4, 1.0, 1.0, 32);
        let betas = [0.6, 1.0, 1.6, 2.4];
        let mut ladder = PackedTfimLadder::new(model, &betas);
        let mut rng = Xoshiro256StarStar::new(11);
        let series = ladder.run(&mut rng, 2000, 15_000);

        let lat = qmc_lattice::Chain::new(4);
        for (k, &beta) in betas.iter().enumerate() {
            let exact =
                qmc_ed::tfim::thermal(&lat, &qmc_ed::tfim::TfimParams { j: 1.0, h: 1.0 }, beta);
            let b = BinningAnalysis::new(&series[k].energy, 16);
            let trotter = (beta / 32.0).powi(2) * 2.0;
            assert!(
                (b.mean - exact.energy / 4.0).abs() < 5.0 * b.error().max(3e-4) + trotter,
                "rung {k} (β={beta}): E {} ± {} vs {}",
                b.mean,
                b.error(),
                exact.energy / 4.0
            );
        }
        for k in 0..betas.len() - 1 {
            let rate = ladder.swap_rate(k);
            assert!(rate > 0.05 && rate <= 1.0, "pair {k} swap rate {rate}");
        }
    }

    #[test]
    fn spatial_packing_matches_scalar_means() {
        // lx = 64 chain: big enough for spatial packing, and the scalar
        // engine provides the reference means (ED cannot reach L=64).
        let model = chain(64, 1.0, 1.0, 8);
        assert!(PackedSpatialTfim::supports(&model));
        let mut packed = PackedSpatialTfim::new(model);
        let mut rng = Xoshiro256StarStar::new(21);
        let pseries = packed.run(&mut rng, 1000, 8000);
        let bp = BinningAnalysis::new(&pseries.energy, 16);

        let mut scalar = SerialTfim::new(model);
        let mut srng = Xoshiro256StarStar::new(22);
        let sseries = scalar.run(&mut srng, 1000, 8000, 0);
        let bs = BinningAnalysis::new(&sseries.energy, 16);
        let err = (bp.error().powi(2) + bs.error().powi(2)).sqrt().max(5e-4);
        assert!(
            (bp.mean - bs.mean).abs() < 5.0 * err,
            "spatial {} ± {} vs scalar {} ± {}",
            bp.mean,
            bp.error(),
            bs.mean,
            bs.error()
        );
        assert!(!PackedSpatialTfim::supports(&chain(8, 1.0, 1.0, 8)));
    }

    #[test]
    fn spatial_config_roundtrip_and_bitwise_measure() {
        let model = chain(64, 1.3, 1.2, 6); // odd-ish extents: m = 6
        let mut scalar = SerialTfim::new(model);
        let mut rng = Xoshiro256StarStar::new(31);
        for _ in 0..10 {
            scalar.metropolis_sweep(&mut rng);
        }
        let mut packed = PackedSpatialTfim::new(model);
        packed.load_config(scalar.export_spins());
        let mut back = vec![0i8; scalar.export_spins().len()];
        packed.extract_config(&mut back);
        assert_eq!(&back[..], scalar.export_spins());
        let sm = scalar.measure();
        let pm = packed.measure();
        assert_eq!(sm.energy_per_site.to_bits(), pm.energy_per_site.to_bits());
        assert_eq!(sm.sigma_x.to_bits(), pm.sigma_x.to_bits());
        assert_eq!(sm.abs_m.to_bits(), pm.abs_m.to_bits());
    }

    #[test]
    fn packed_dist_pooled_matches_ed() {
        let model = chain(8, 1.0, 1.0, 16);
        let results = run_threads(4, move |comm| {
            let mut eng = PackedDistTfim::new(model, 8, comm);
            let mut rng = StreamFactory::new(5).stream(comm.rank());
            eng.run(comm, &mut rng, 1200, 5000)
        });
        let lat = qmc_lattice::Chain::new(8);
        let exact = qmc_ed::tfim::thermal(&lat, &qmc_ed::tfim::TfimParams { j: 1.0, h: 1.0 }, 1.0);
        let (e, de) = pooled(&results[0], |s| &s.energy);
        let trotter = (1.0f64 / 16.0).powi(2) * 2.0;
        assert!(
            (e - exact.energy / 8.0).abs() < 4.0 * de.max(2e-4) + trotter,
            "E {e} ± {de} vs {}",
            exact.energy / 8.0
        );
        // Collective measurements: identical series on every rank.
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                assert_eq!(a.energy, b.energy);
            }
        }
    }

    #[test]
    fn packed_dist_deterministic_and_counts_halo_bytes() {
        let model = chain(8, 1.0, 1.0, 8);
        let run = || {
            run_threads(2, move |comm| {
                let mut eng = PackedDistTfim::new(model, 4, comm);
                let mut rng = StreamFactory::new(123).stream(comm.rank());
                let series = eng.run(comm, &mut rng, 20, 40);
                let halo: u64 = ["east", "west"]
                    .iter()
                    .map(|d| eng.metrics().get(&format!("tfim.halo_bytes.{d}")))
                    .sum();
                (series, halo)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a[0].0[0].energy, b[0].0[0].energy);
        // 8 bytes per boundary word, 2 directions, m slices, per exchange:
        // initial + 2 per sweep over 60 sweeps.
        assert_eq!(a[0].1, 2 * 8 * 8 * (1 + 2 * 60));
    }

    #[test]
    fn packed_checkpoint_roundtrip_is_bit_identical() {
        let model = chain(8, 1.1, 1.4, 8);
        let mut eng = PackedReplicas::new(model, 24);
        let mut rng = Xoshiro256StarStar::new(77);
        for _ in 0..20 {
            eng.metropolis_sweep(&mut rng);
        }
        let bytes = qmc_ckpt::save_state(&eng);
        let mut restored = PackedReplicas::new(model, 24);
        qmc_ckpt::load_state(&bytes, &mut restored).expect("restore");
        assert_eq!(restored.lat.words(), eng.lat.words());
        assert_eq!(restored.accepted(), eng.accepted());
        // Continuing both produces identical trajectories.
        let mut ra = Xoshiro256StarStar::new(5);
        let mut rb = Xoshiro256StarStar::new(5);
        eng.metropolis_sweep(&mut ra);
        restored.metropolis_sweep(&mut rb);
        assert_eq!(restored.lat.words(), eng.lat.words());

        // Wrong lane count is rejected, not silently truncated.
        let mut wrong = PackedReplicas::new(model, 23);
        assert!(qmc_ckpt::load_state(&bytes, &mut wrong).is_err());
    }

    #[test]
    fn packed_series_sections_roundtrip_with_lane_prefixes() {
        let mut series = PackedSeries::new(3);
        let meas: Vec<TfimMeasurement> = (0..3)
            .map(|k| TfimMeasurement {
                energy_per_site: -1.0 - k as f64,
                abs_m: 0.5,
                m2: 0.25,
                sigma_x: 0.7,
            })
            .collect();
        for _ in 0..70 {
            series.record(&meas);
        }
        // Chunked dirty tracking carries the lane prefix.
        series.mark_clean();
        for _ in 0..3 {
            series.record(&meas);
        }
        let dirty: Vec<String> = series
            .dirty_sections()
            .iter()
            .filter(|(_, d)| *d)
            .map(|(n, _)| n.to_string())
            .collect();
        // Per lane: the second row chunk (rows 64..73) and the head.
        assert_eq!(dirty.len(), 6, "{dirty:?}");
        assert!(dirty.contains(&"l0/rows/1".to_string()));
        assert!(dirty.contains(&"l2/head".to_string()));
        assert!(!dirty.contains(&"l1/rows/0".to_string()));

        let bytes = qmc_ckpt::save_state(&series);
        let mut restored = PackedSeries::new(3);
        qmc_ckpt::load_state(&bytes, &mut restored).expect("restore");
        for (a, b) in restored.lanes.iter().zip(&series.lanes) {
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.sigma_x, b.sigma_x);
        }
    }
}
