//! Domain-decomposed parallel TFIM engine.
//!
//! The spatial lattice is block-distributed over a processor grid
//! ([`qmc_lattice::Decomposition`]); every rank stores its block for all
//! `m` time slices plus a one-cell ghost frame in the spatial directions
//! (the time direction is local). One sweep is:
//!
//! 1. update all sites of checkerboard parity 0 (`(x+y+t) mod 2`, global
//!    coordinates) — these only read parity-1 neighbours, which are either
//!    interior or current ghosts;
//! 2. halo exchange with the 4 mesh neighbours;
//! 3. same for parity 1; 4. halo exchange.
//!
//! Because same-parity sites are conditionally independent, this parallel
//! schedule samples exactly the same distribution as a sequential
//! checkerboard sweep — the serial/parallel agreement test below is a
//! distribution-level check of that claim.
//!
//! Virtual-machine runs ([`qmc_comm::ModelComm`]) charge
//! [`FLOPS_PER_UPDATE`] per site update, which is how the T1/T2/T3 scaling
//! tables are produced.

use crate::serial::{TfimMeasurement, TfimSeries};
use crate::{AcceptTable, StCouplings, TfimModel};
use qmc_comm::{Communicator, ReduceOp};
use qmc_lattice::{Decomposition, Dir, ProcGrid, Subdomain};
use qmc_obs::{CounterId, Registry};
use qmc_rng::Rng64;

/// Modeled cost of one Metropolis site update, in flop-equivalents
/// (neighbour gather, table lookup, RNG draw, store — calibrated to a
/// 1993-class scalar node).
pub const FLOPS_PER_UPDATE: f64 = 50.0;

/// Processor grid for a model on `p` ranks: chains decompose along x
/// only; 2-D lattices get the most nearly square factorization.
pub fn grid_for(model: &TfimModel, p: usize) -> ProcGrid {
    if model.ly == 1 {
        ProcGrid::new(p, 1)
    } else {
        ProcGrid::nearly_square(p)
    }
}

/// Per-rank state of the distributed TFIM engine.
pub struct DistTfim {
    model: TfimModel,
    c: StCouplings,
    sub: Subdomain,
    grid: ProcGrid,
    rank: usize,
    /// Spins with ghosts: `m` slices of `(w+2)·(h+2)`, value ±1.
    spins: Vec<i8>,
    slice_stride: usize,
    /// Shared precomputed Metropolis acceptance-ratio table.
    accept: AcceptTable,
    /// Engine-owned metrics: acceptance counters plus per-direction halo
    /// byte counts. Always live, so reported acceptance rates are the
    /// same whether or not the observability layer is enabled.
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    /// Persistent halo send buffer (reused every exchange: steady-state
    /// sweeps perform zero heap allocations in this engine).
    send_buf: Vec<u8>,
    /// Persistent halo receive buffer.
    recv_buf: Vec<u8>,
    /// Per-direction halo plan (neighbours, tags, gather/scatter strips),
    /// precomputed once so the exchange loop allocates nothing.
    halo: Vec<HaloDir>,
}

/// Precomputed halo-exchange plan for one mesh direction.
struct HaloDir {
    /// Rank my edge strip is sent to.
    neighbor: usize,
    /// Rank whose strip lands in my ghosts.
    from: usize,
    /// Message tag (distinct per direction).
    tag: u32,
    /// Interior local indices gathered into the send buffer.
    send_idx: Vec<usize>,
    /// Ghost local indices the received strip scatters into.
    recv_idx: Vec<usize>,
    /// Per-direction halo byte counter (`tfim.halo_bytes.<dir>`) in the
    /// engine registry; counts actually-sent messages, not self-wraps.
    bytes_ctr: CounterId,
}

impl DistTfim {
    /// Build the rank-local state (collective: every rank must call it).
    pub fn new<C: Communicator>(model: TfimModel, comm: &C) -> Self {
        let model = model.validated();
        let grid = grid_for(&model, comm.size());
        assert_eq!(
            grid.size(),
            comm.size(),
            "grid does not match communicator size"
        );
        let decomp = Decomposition::new(model.lx, model.ly, grid);
        let sub = decomp.subdomain(comm.rank());
        let slice_stride = sub.padded_len();
        let spins = vec![1i8; slice_stride * model.m];
        let c = model.couplings();
        // Largest halo strip: one row or column of the block, all slices.
        let strip = sub.w.max(sub.h) * model.m;
        let rank = comm.rank();
        let dirs: &[Dir] = if model.ly == 1 {
            &[Dir::East, Dir::West]
        } else {
            &Dir::ALL
        };
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        let halo = dirs
            .iter()
            .map(|&dir| HaloDir {
                neighbor: grid.neighbor(rank, dir),
                // What I send toward `dir` lands in the neighbour's ghost
                // strip facing `dir.opposite()`; symmetrically I receive
                // from my `dir.opposite()` neighbour into my
                // `dir.opposite()`-facing ghosts.
                from: grid.neighbor(rank, dir.opposite()),
                tag: 100 + dir_id(dir),
                send_idx: sub.send_strip(dir),
                recv_idx: sub.recv_strip(dir.opposite()),
                bytes_ctr: metrics.counter(dir_bytes_counter(dir)),
            })
            .collect();

        Self {
            model,
            c,
            sub,
            grid,
            rank,
            spins,
            slice_stride,
            accept: AcceptTable::new(&c),
            metrics,
            id_accepted,
            id_proposed,
            send_buf: Vec::with_capacity(strip),
            recv_buf: Vec::with_capacity(strip),
            halo,
        }
    }

    /// Fraction of Metropolis proposals accepted on this rank so far
    /// (parity with [`crate::serial::SerialTfim`]; aggregate across ranks
    /// with an allreduce over `[accepted, proposed]` if a global rate is
    /// wanted).
    pub fn acceptance_rate(&self) -> f64 {
        self.accepted() as f64 / self.proposed().max(1) as f64
    }

    /// Metropolis proposals accepted on this rank (`tfim.accepted`).
    pub fn accepted(&self) -> u64 {
        self.metrics.value(self.id_accepted)
    }

    /// Metropolis proposals made on this rank (`tfim.proposed`).
    pub fn proposed(&self) -> u64 {
        self.metrics.value(self.id_proposed)
    }

    /// This rank's engine metrics: acceptance counters plus
    /// `tfim.halo_bytes.<east|west|north|south>` byte counts (fold into a
    /// [`qmc_obs::RankObs`] with
    /// [`absorb_registry`](qmc_obs::RankObs::absorb_registry)).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The block this rank owns.
    pub fn subdomain(&self) -> Subdomain {
        self.sub
    }

    #[inline]
    fn at(&self, t: usize, local2d: usize) -> i8 {
        self.spins[t * self.slice_stride + local2d]
    }

    /// Exchange ghost frames with the four mesh neighbours (one aggregated
    /// message per direction covering all time slices). Neighbours that
    /// are this rank itself (periodic wrap of a 1-wide grid dimension) are
    /// served by local copies — no self-messages.
    ///
    /// Allocation-free in steady state: the per-direction plan (strips,
    /// neighbours, tags) is precomputed at construction and the send/recv
    /// byte buffers are persistent fields reused across exchanges (via
    /// [`Communicator::sendrecv_bytes_into`]).
    pub fn halo_exchange<C: Communicator>(&mut self, comm: &mut C) {
        let _span = qmc_obs::span("tfim.halo_exchange");
        // Detach the plan and buffers from `self` so the gather/scatter
        // loops can index `self.spins` without borrow conflicts.
        let halo = std::mem::take(&mut self.halo);
        let mut send = std::mem::take(&mut self.send_buf);
        let mut recv = std::mem::take(&mut self.recv_buf);
        for hd in &halo {
            send.clear();
            for t in 0..self.model.m {
                let base = t * self.slice_stride;
                for &i in &hd.send_idx {
                    send.push(self.spins[base + i] as u8);
                }
            }

            let incoming: &[u8] = if hd.neighbor == self.rank && hd.from == self.rank {
                &send // periodic self-wrap: my own edge is my ghost
            } else {
                self.metrics.add(hd.bytes_ctr, send.len() as u64);
                comm.sendrecv_bytes_into(hd.neighbor, hd.tag, &send, hd.from, hd.tag, &mut recv);
                &recv
            };

            assert_eq!(
                incoming.len(),
                hd.recv_idx.len() * self.model.m,
                "halo payload size mismatch"
            );
            let mut it = incoming.iter();
            for t in 0..self.model.m {
                let base = t * self.slice_stride;
                for &i in &hd.recv_idx {
                    self.spins[base + i] = *it.next().expect("sized above") as i8;
                }
            }
        }
        self.halo = halo;
        self.send_buf = send;
        self.recv_buf = recv;
    }

    /// Update every interior site of global parity `color`; returns the
    /// number of proposals (== sites of that parity).
    #[qmc_hot::hot]
    fn half_sweep<R: Rng64>(&mut self, color: usize, rng: &mut R) -> u64 {
        let m = self.model;
        let sub = self.sub;
        let w2 = sub.w + 2;
        let mut proposals = 0u64;
        let mut accepted = 0u64;
        for t in 0..m.m {
            let base = t * self.slice_stride;
            let up = ((t + 1) % m.m) * self.slice_stride;
            let down = ((t + m.m - 1) % m.m) * self.slice_stride;
            for iy in 0..sub.h {
                let gy = sub.y0 + iy;
                for ix in 0..sub.w {
                    let gx = sub.x0 + ix;
                    if (gx + gy + t) % 2 != color {
                        continue;
                    }
                    let li = sub.local(ix as isize, iy as isize);
                    let s = self.spins[base + li];
                    let mut sp =
                        self.spins[base + li - 1] as i32 + self.spins[base + li + 1] as i32;
                    if m.ly > 1 {
                        sp += self.spins[base + li - w2] as i32 + self.spins[base + li + w2] as i32;
                    }
                    let tp = self.spins[up + li] as i32 + self.spins[down + li] as i32;
                    proposals += 1;
                    // lint: allow(hot-scalar-spin-loop) — reference scalar halo kernel; packed equivalent is PackedDistTfim
                    if rng.metropolis(self.accept.ratio(s, sp, tp)) {
                        self.spins[base + li] = -s;
                        accepted += 1;
                    }
                }
            }
        }
        self.metrics.add(self.id_proposed, proposals);
        self.metrics.add(self.id_accepted, accepted);
        proposals
    }

    /// One full sweep: two parity halves, each followed by a halo
    /// exchange; compute time is charged to the communicator's clock.
    #[qmc_hot::hot]
    pub fn sweep<C: Communicator, R: Rng64>(&mut self, comm: &mut C, rng: &mut R) {
        let _span = qmc_obs::span("tfim.sweep");
        for color in 0..2 {
            let proposals = {
                let _half = qmc_obs::span("tfim.half_sweep");
                self.half_sweep(color, rng)
            };
            comm.compute(proposals as f64 * FLOPS_PER_UPDATE);
            self.halo_exchange(comm);
        }
    }

    /// Local contributions `(ΣSP, ΣT, Σs)` over owned sites (each site
    /// owns its +x/+y bonds; edge partners come from current ghosts).
    fn local_sums(&self) -> (f64, f64, f64) {
        let m = self.model;
        let sub = self.sub;
        let w2 = sub.w + 2;
        let (mut sp, mut tt, mut tot) = (0i64, 0i64, 0i64);
        for t in 0..m.m {
            let base = t * self.slice_stride;
            let up = ((t + 1) % m.m) * self.slice_stride;
            for iy in 0..sub.h {
                for ix in 0..sub.w {
                    let li = sub.local(ix as isize, iy as isize);
                    let s = self.spins[base + li] as i64;
                    sp += s * self.spins[base + li + 1] as i64;
                    if m.ly > 1 {
                        sp += s * self.spins[base + li + w2] as i64;
                    }
                    tt += s * self.spins[up + li] as i64;
                    tot += s;
                }
            }
        }
        (sp as f64, tt as f64, tot as f64)
    }

    /// Global measurement (collective allreduce; every rank returns the
    /// same values). Ghosts must be current (call after [`Self::sweep`]).
    pub fn measure<C: Communicator>(&self, comm: &mut C) -> TfimMeasurement {
        let _span = qmc_obs::span("tfim.measure");
        let (sp, tt, tot) = self.local_sums();
        let global = comm.allreduce_f64(&[sp, tt, tot], ReduceOp::Sum);
        let n = self.model.n_sites();
        let mag = global[2] / (n * self.model.m) as f64;
        TfimMeasurement {
            energy_per_site: self.c.energy(n, self.model.m, global[0], global[1]) / n as f64,
            abs_m: mag.abs(),
            m2: mag * mag,
            sigma_x: self.c.sigma_x(n, self.model.m, global[1]),
        }
    }

    /// Thermalize and run, recording one measurement per sweep (identical
    /// series on every rank).
    pub fn run<C: Communicator, R: Rng64>(
        &mut self,
        comm: &mut C,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
    ) -> TfimSeries {
        // Initial exchange so ghosts are valid before the first sweep.
        self.halo_exchange(comm);
        for _ in 0..therm {
            self.sweep(comm, rng);
        }
        let mut series = TfimSeries::default();
        for _ in 0..sweeps {
            self.sweep(comm, rng);
            series.record(&self.measure(comm));
        }
        series
    }

    /// Gather the full space-time configuration on rank 0 (testing aid).
    pub fn gather_global<C: Communicator>(&self, comm: &mut C) -> Option<Vec<i8>> {
        let m = self.model;
        let sub = self.sub;
        // Interior values in (t, iy, ix) order.
        let mut mine = Vec::with_capacity(sub.w * sub.h * m.m);
        for t in 0..m.m {
            let base = t * self.slice_stride;
            for iy in 0..sub.h {
                for ix in 0..sub.w {
                    mine.push(self.spins[base + sub.local(ix as isize, iy as isize)] as u8);
                }
            }
        }
        let gathered = comm.gather_bytes(0, &mine)?;
        // Reassemble into global (t·ly + y)·lx + x layout.
        let decomp = Decomposition::new(m.lx, m.ly, self.grid);
        let mut global = vec![0i8; m.lx * m.ly * m.m];
        for (rank, payload) in gathered.iter().enumerate() {
            let s = decomp.subdomain(rank);
            let mut it = payload.iter();
            for t in 0..m.m {
                for iy in 0..s.h {
                    for ix in 0..s.w {
                        let (gx, gy) = s.global(ix, iy, m.lx, m.ly);
                        global[(t * m.ly + gy) * m.lx + gx] = *it.next().expect("sized") as i8;
                    }
                }
            }
        }
        Some(global)
    }

    /// Direct ghost access for the consistency tests.
    pub fn ghost(&self, t: usize, ix: isize, iy: isize) -> i8 {
        self.at(t, self.sub.local(ix, iy))
    }
}

impl qmc_ckpt::Checkpoint for DistTfim {
    fn kind(&self) -> &'static str {
        "engine.tfim.dist"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        // The full ghost-padded block: restoring ghosts too means a
        // resumed rank needs no extra halo exchange to be sweep-ready,
        // and the very next half-sweep reads exactly what it would have.
        let raw: Vec<u8> = self.spins.iter().map(|&s| s as u8).collect();
        enc.bytes(&raw);
        qmc_ckpt::registry::save_registry(enc, &self.metrics);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let raw = dec.bytes()?;
        if raw.len() != self.spins.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "dist tfim spins: rank block has {} cells, checkpoint has {}",
                self.spins.len(),
                raw.len()
            )));
        }
        for (dst, &b) in self.spins.iter_mut().zip(raw) {
            *dst = match b as i8 {
                s @ (1 | -1) => s,
                s => {
                    return Err(qmc_ckpt::CkptError::corrupt(format!(
                        "dist tfim spin value {s} is not ±1"
                    )))
                }
            };
        }
        qmc_ckpt::registry::load_registry(dec, &mut self.metrics)
    }
}

pub(crate) fn dir_id(d: Dir) -> u32 {
    match d {
        Dir::East => 0,
        Dir::West => 1,
        Dir::North => 2,
        Dir::South => 3,
    }
}

pub(crate) fn dir_bytes_counter(d: Dir) -> &'static str {
    match d {
        Dir::East => "tfim.halo_bytes.east",
        Dir::West => "tfim.halo_bytes.west",
        Dir::North => "tfim.halo_bytes.north",
        Dir::South => "tfim.halo_bytes.south",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_comm::{run_threads, SerialComm};
    use qmc_rng::{StreamFactory, Xoshiro256StarStar};
    use qmc_stats::BinningAnalysis;

    fn chain_model(lx: usize, h: f64, beta: f64, m: usize) -> TfimModel {
        TfimModel {
            lx,
            ly: 1,
            j: 1.0,
            h,
            beta,
            m,
        }
    }

    #[test]
    fn ghost_consistency_after_exchange() {
        // After a halo exchange, every rank's ghost column must equal the
        // true global neighbour value.
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 1.0,
            beta: 1.0,
            m: 4,
        };
        run_threads(4, move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(42).stream(comm.rank());
            // Scramble, exchange, then verify against the gathered truth.
            eng.halo_exchange(comm);
            for _ in 0..3 {
                eng.sweep(comm, &mut rng);
            }
            let global = eng.gather_global(comm);
            let global = comm.broadcast_bytes(
                0,
                global
                    .map(|g| g.iter().map(|&s| s as u8).collect())
                    .unwrap_or_default(),
            );
            let g = |x: usize, y: usize, t: usize| global[(t * 8 + y) * 8 + x] as i8;
            let sub = eng.subdomain();
            for t in 0..model.m {
                for iy in 0..sub.h {
                    // west ghost (ix = −1) should equal global x0−1 column
                    let gx = (sub.x0 + 8 - 1) % 8;
                    let gy = sub.y0 + iy;
                    assert_eq!(eng.ghost(t, -1, iy as isize), g(gx, gy, t));
                    // east ghost
                    let gx = (sub.x0 + sub.w) % 8;
                    assert_eq!(eng.ghost(t, sub.w as isize, iy as isize), g(gx, gy, t));
                }
                for ix in 0..sub.w {
                    let gx = sub.x0 + ix;
                    let gy = (sub.y0 + 8 - 1) % 8;
                    assert_eq!(eng.ghost(t, ix as isize, -1), g(gx, gy, t));
                    let gy = (sub.y0 + sub.h) % 8;
                    assert_eq!(eng.ghost(t, ix as isize, sub.h as isize), g(gx, gy, t));
                }
            }
        });
    }

    #[test]
    fn single_rank_matches_ed() {
        let model = chain_model(4, 1.0, 1.0, 16);
        let mut comm = SerialComm::new();
        let mut eng = DistTfim::new(model, &comm);
        let mut rng = Xoshiro256StarStar::new(7);
        let series = eng.run(&mut comm, &mut rng, 2000, 20_000);

        let lat = qmc_lattice::Chain::new(4);
        let exact = qmc_ed::tfim::thermal(&lat, &qmc_ed::tfim::TfimParams { j: 1.0, h: 1.0 }, 1.0);
        let be = BinningAnalysis::new(&series.energy, 16);
        let trotter = (1.0f64 / 16.0).powi(2) * 2.0;
        assert!(
            (be.mean - exact.energy / 4.0).abs() < 4.0 * be.error().max(2e-4) + trotter,
            "E {} ± {} vs {}",
            be.mean,
            be.error(),
            exact.energy / 4.0
        );
    }

    #[test]
    fn four_ranks_match_ed_chain() {
        let model = chain_model(8, 1.0, 1.0, 16);
        let results = run_threads(4, move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(5).stream(comm.rank());
            eng.run(comm, &mut rng, 2000, 20_000)
        });
        // Every rank returns the same (collective) series.
        let lat = qmc_lattice::Chain::new(8);
        let exact = qmc_ed::tfim::thermal(&lat, &qmc_ed::tfim::TfimParams { j: 1.0, h: 1.0 }, 1.0);
        let be = BinningAnalysis::new(&results[0].energy, 16);
        let trotter = (1.0f64 / 16.0).powi(2) * 2.0;
        assert!(
            (be.mean - exact.energy / 8.0).abs() < 4.0 * be.error().max(2e-4) + trotter,
            "E {} ± {} vs {}",
            be.mean,
            be.error(),
            exact.energy / 8.0
        );
        for r in &results[1..] {
            assert_eq!(r.energy, results[0].energy, "series differ across ranks");
        }
    }

    #[test]
    fn parallel_and_serial_engines_agree() {
        // Distribution-level check: P=4 distributed vs the serial engine.
        let model = chain_model(16, 1.2, 1.5, 16);
        let par = run_threads(4, move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(9).stream(comm.rank());
            eng.run(comm, &mut rng, 1500, 15_000)
        });
        let mut ser_eng = crate::serial::SerialTfim::new(model);
        let mut rng = Xoshiro256StarStar::new(10);
        let ser = ser_eng.run(&mut rng, 1500, 15_000, 0);

        let bp = BinningAnalysis::new(&par[0].energy, 16);
        let bs = BinningAnalysis::new(&ser.energy, 16);
        let err = (bp.error().powi(2) + bs.error().powi(2)).sqrt().max(5e-4);
        assert!(
            (bp.mean - bs.mean).abs() < 5.0 * err,
            "parallel {} ± {} vs serial {} ± {}",
            bp.mean,
            bp.error(),
            bs.mean,
            bs.error()
        );
    }

    #[test]
    fn buffered_halo_matches_allocating_reference() {
        // The buffer-reuse halo exchange must land exactly the bytes the
        // straightforward allocating sendrecv_bytes implementation does:
        // corrupt a copy's ghosts, refill them through the reference
        // path, and compare byte-for-byte against the buffered engine.
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 1.5,
            beta: 1.0,
            m: 4,
        };
        run_threads(4, move |comm| {
            let mut a = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(55).stream(comm.rank());
            a.halo_exchange(comm);
            for _ in 0..5 {
                a.sweep(comm, &mut rng);
            }

            let mut b = DistTfim::new(model, comm);
            b.spins.copy_from_slice(&a.spins);
            type Plan = (usize, usize, u32, Vec<usize>, Vec<usize>);
            let plan: Vec<Plan> = b
                .halo
                .iter()
                .map(|hd| {
                    (
                        hd.neighbor,
                        hd.from,
                        hd.tag,
                        hd.send_idx.clone(),
                        hd.recv_idx.clone(),
                    )
                })
                .collect();
            for (_, _, _, _, recv_idx) in &plan {
                for t in 0..model.m {
                    for &i in recv_idx {
                        b.spins[t * b.slice_stride + i] = 0;
                    }
                }
            }
            for (neighbor, from, tag, send_idx, recv_idx) in &plan {
                let mut send = Vec::new();
                for t in 0..model.m {
                    for &i in send_idx {
                        send.push(b.spins[t * b.slice_stride + i] as u8);
                    }
                }
                let incoming = if *neighbor == comm.rank() && *from == comm.rank() {
                    send.clone()
                } else {
                    comm.sendrecv_bytes(*neighbor, *tag, &send, *from, *tag)
                };
                let mut it = incoming.iter();
                for t in 0..model.m {
                    for &i in recv_idx {
                        b.spins[t * b.slice_stride + i] = *it.next().unwrap() as i8;
                    }
                }
            }
            assert_eq!(a.spins, b.spins, "rank {}", comm.rank());
        });
    }

    #[test]
    fn halo_byte_counters_match_comm_stats() {
        // Every user-level byte this engine sends is a halo strip, so the
        // per-direction registry counters must sum to the communicator's
        // bytes_sent (no collectives run before the check).
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 1.0,
            beta: 1.0,
            m: 4,
        };
        run_threads(4, move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(3).stream(comm.rank());
            eng.halo_exchange(comm);
            for _ in 0..3 {
                eng.sweep(comm, &mut rng);
            }
            let dirs = ["east", "west", "north", "south"];
            let halo_bytes: u64 = dirs
                .iter()
                .map(|d| eng.metrics().get(&format!("tfim.halo_bytes.{d}")))
                .sum();
            assert!(halo_bytes > 0);
            assert_eq!(halo_bytes, comm.stats().bytes_sent, "rank {}", comm.rank());
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let model = chain_model(8, 1.0, 1.0, 8);
        let run = || {
            run_threads(2, move |comm| {
                let mut eng = DistTfim::new(model, comm);
                let mut rng = StreamFactory::new(123).stream(comm.rank());
                eng.run(comm, &mut rng, 50, 100)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a[0].energy, b[0].energy);
        assert_eq!(a[0].m2, b[0].m2);
    }

    #[test]
    fn two_dimensional_parallel_runs() {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 3.0,
            beta: 1.0,
            m: 8,
        };
        let results = run_threads(4, move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(77).stream(comm.rank());
            eng.run(comm, &mut rng, 300, 1000)
        });
        let e = results[0].energy.iter().sum::<f64>() / results[0].energy.len() as f64;
        assert!(e < 0.0 && e > -6.0, "E = {e}");
    }

    #[test]
    fn modelworld_speedup_shape() {
        // On the simulated 1993 mesh, a decent-sized problem must show
        // real speedup from P=1 to P=16.
        let model = TfimModel {
            lx: 64,
            ly: 64,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        };
        let time_for = |p: usize| {
            let reports =
                qmc_comm::run_model(p, qmc_comm::MachineModel::mesh_1993(p), move |comm| {
                    let mut eng = DistTfim::new(model, comm);
                    let mut rng = StreamFactory::new(1).stream(comm.rank());
                    eng.halo_exchange(comm);
                    for _ in 0..5 {
                        eng.sweep(comm, &mut rng);
                    }
                    eng.measure(comm);
                });
            qmc_comm::model::job_seconds(&reports)
        };
        let t1 = time_for(1);
        let t16 = time_for(16);
        let speedup = t1 / t16;
        assert!(
            speedup > 8.0 && speedup <= 16.0,
            "speedup at P=16: {speedup} (t1={t1}, t16={t16})"
        );
    }
}
