//! Single-memory TFIM path-integral engine (Metropolis + Wolff).

use crate::{AcceptTable, StCouplings, TfimModel};
use qmc_obs::{CounterId, Registry};
use qmc_rng::Rng64;

/// Spacetime spin configuration of the mapped classical model plus update
/// kernels. Spins are `±1`, indexed `(t·ly + y)·lx + x`.
#[derive(Debug, Clone)]
pub struct SerialTfim {
    model: TfimModel,
    c: StCouplings,
    spins: Vec<i8>,
    /// Spins changed since the last successful checkpoint snapshot
    /// (conservatively true on construction and after any accepted
    /// update; cleared only by [`qmc_ckpt::Checkpoint::mark_clean`]).
    spins_dirty: bool,
    /// Engine-owned metrics (acceptance counters, Wolff cluster sizes).
    /// Always live — the reported acceptance rate does not depend on the
    /// observability layer being enabled.
    metrics: Registry,
    id_accepted: CounterId,
    id_proposed: CounterId,
    /// Precomputed acceptance ratios (no `exp` in the sweep loop).
    accept: AcceptTable,
    /// Wolff add probabilities `1 − e^{−2K}`, precomputed per bond type.
    wolff_p_space: f64,
    wolff_p_time: f64,
    // Wolff scratch
    stack: Vec<usize>,
    in_cluster: Vec<bool>,
}

/// One sweep's raw measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfimMeasurement {
    /// Quantum energy per site.
    pub energy_per_site: f64,
    /// Spacetime-averaged |magnetization| (the PIMC order parameter
    /// `⟨|(1/β)∫ m(τ) dτ|⟩`).
    pub abs_m: f64,
    /// Spacetime-averaged m².
    pub m2: f64,
    /// `⟨σˣ⟩` estimator.
    pub sigma_x: f64,
}

/// Time series of per-sweep measurements.
#[derive(Debug, Clone, Default)]
pub struct TfimSeries {
    /// Energy per site.
    pub energy: Vec<f64>,
    /// |m| (spacetime average).
    pub abs_m: Vec<f64>,
    /// m².
    pub m2: Vec<f64>,
    /// σˣ per site.
    pub sigma_x: Vec<f64>,
    /// Rows captured by the last successful snapshot: completed row
    /// chunks below this mark are immutable and checkpoint as clean.
    clean_rows: usize,
}

impl TfimSeries {
    /// Record one measurement.
    pub fn record(&mut self, m: &TfimMeasurement) {
        qmc_obs::health_record("energy", m.energy_per_site);
        self.energy.push(m.energy_per_site);
        self.abs_m.push(m.abs_m);
        self.m2.push(m.m2);
        self.sigma_x.push(m.sigma_x);
    }

    /// Binder cumulant `U₄ = 1 − ⟨m⁴⟩/(3⟨m²⟩²)` of the spacetime-averaged
    /// magnetization: → 2/3 deep in the ordered phase, → 0 in the
    /// disordered phase; curves for different `L` cross near criticality.
    pub fn binder_cumulant(&self) -> f64 {
        let n = self.m2.len().max(1) as f64;
        let m2 = self.m2.iter().sum::<f64>() / n;
        let m4 = self.m2.iter().map(|v| v * v).sum::<f64>() / n;
        if m2 == 0.0 {
            return 0.0;
        }
        1.0 - m4 / (3.0 * m2 * m2)
    }

    /// Number of sweeps recorded.
    pub fn len(&self) -> usize {
        self.energy.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty()
    }
}

impl SerialTfim {
    /// Fresh engine in the fully-aligned (all-up) configuration.
    pub fn new(model: TfimModel) -> Self {
        let model = model.validated();
        let n = model.lx * model.ly * model.m;
        let c = model.couplings();
        let mut metrics = Registry::new();
        let id_accepted = metrics.counter("tfim.accepted");
        let id_proposed = metrics.counter("tfim.proposed");
        // Registered eagerly (not on first Wolff update) so a freshly
        // constructed engine has the exact registry shape a checkpoint
        // expects, however many updates the checkpointed run had done.
        metrics.hist("tfim.wolff_cluster");
        Self {
            c,
            spins: vec![1; n],
            spins_dirty: true,
            model,
            metrics,
            id_accepted,
            id_proposed,
            accept: AcceptTable::new(&c),
            wolff_p_space: 1.0 - (-2.0 * c.k_space).exp(),
            wolff_p_time: 1.0 - (-2.0 * c.k_time).exp(),
            stack: Vec::new(),
            in_cluster: vec![false; n],
        }
    }

    /// Model parameters.
    pub fn model(&self) -> &TfimModel {
        &self.model
    }

    /// Fraction of Metropolis proposals accepted so far.
    pub fn acceptance_rate(&self) -> f64 {
        self.accepted() as f64 / self.proposed().max(1) as f64
    }

    /// Metropolis proposals accepted so far (`tfim.accepted`).
    pub fn accepted(&self) -> u64 {
        self.metrics.value(self.id_accepted)
    }

    /// Metropolis proposals made so far (`tfim.proposed`).
    pub fn proposed(&self) -> u64 {
        self.metrics.value(self.id_proposed)
    }

    /// The engine's metrics registry (fold into a
    /// [`qmc_obs::RankObs`] with
    /// [`absorb_registry`](qmc_obs::RankObs::absorb_registry) at run end).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, t: usize) -> usize {
        (t * self.model.ly + y) * self.model.lx + x
    }

    /// Spin value at `(x, y, t)`.
    #[inline]
    pub fn spin(&self, x: usize, y: usize, t: usize) -> i8 {
        self.spins[self.idx(x, y, t)]
    }

    /// The six (or four, for chains) neighbour indices of a site, with
    /// coupling kind: `(index, is_temporal)`.
    fn neighbors(&self, x: usize, y: usize, t: usize) -> [(usize, bool); 6] {
        let m = &self.model;
        let xp = self.idx((x + 1) % m.lx, y, t);
        let xm = self.idx((x + m.lx - 1) % m.lx, y, t);
        let (yp, ym) = if m.ly > 1 {
            (
                self.idx(x, (y + 1) % m.ly, t),
                self.idx(x, (y + m.ly - 1) % m.ly, t),
            )
        } else {
            // Chains: point the y slots at the site itself with zero
            // effect — they are filtered by `ly > 1` in the kernels.
            (usize::MAX, usize::MAX)
        };
        let tp = self.idx(x, y, (t + 1) % m.m);
        let tm = self.idx(x, y, (t + m.m - 1) % m.m);
        [
            (xp, false),
            (xm, false),
            (yp, false),
            (ym, false),
            (tp, true),
            (tm, true),
        ]
    }

    /// Classical action cost of flipping site `(x, y, t)`:
    /// `ΔS = 2 s (K_s Σ_spatial s' + K_τ Σ_temporal s')`.
    ///
    /// Reference implementation kept for the consistency tests; the sweep
    /// kernel uses the precomputed [`AcceptTable`] instead.
    #[cfg(test)]
    fn flip_cost(&self, x: usize, y: usize, t: usize) -> f64 {
        let s = self.spin(x, y, t) as f64;
        let mut spatial = 0.0;
        let mut temporal = 0.0;
        for (nb, is_t) in self.neighbors(x, y, t) {
            if nb == usize::MAX {
                continue;
            }
            if is_t {
                temporal += self.spins[nb] as f64;
            } else {
                spatial += self.spins[nb] as f64;
            }
        }
        2.0 * s * (self.c.k_space * spatial + self.c.k_time * temporal)
    }

    /// One full Metropolis sweep in checkerboard order (the exact update
    /// schedule the parallel engine uses).
    ///
    /// Table-driven hot loop: the neighbour sums are gathered as integers
    /// and the acceptance ratio comes from [`AcceptTable`], so no
    /// transcendental function runs per proposal. Proposal order and the
    /// random-number stream are identical to the previous `exp`-per-site
    /// implementation.
    #[qmc_hot::hot]
    pub fn metropolis_sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("tfim.metropolis_sweep");
        let m = self.model;
        let (lx, ly, mm) = (m.lx, m.ly, m.m);
        let slice = lx * ly;
        // Counters accumulate in locals and flush once per sweep: the hot
        // loop stays free of registry indexing (2% overhead budget).
        let mut accepted = 0u64;
        let mut proposed = 0u64;
        for color in 0..2usize {
            for t in 0..mm {
                let up = ((t + 1) % mm) * slice;
                let down = ((t + mm - 1) % mm) * slice;
                let tslice = t * slice;
                for y in 0..ly {
                    let row = tslice + y * lx;
                    let (north, south) = if ly > 1 {
                        (
                            tslice + ((y + 1) % ly) * lx,
                            tslice + ((y + ly - 1) % ly) * lx,
                        )
                    } else {
                        (0, 0)
                    };
                    // Sites of parity `color` in this row start at x0 and
                    // step by 2 — same visit order as the old parity test.
                    let x0 = (color + y + t) % 2;
                    for x in (x0..lx).step_by(2) {
                        let xp = if x + 1 == lx { 0 } else { x + 1 };
                        let xm = if x == 0 { lx - 1 } else { x - 1 };
                        let i = row + x;
                        let s = self.spins[i];
                        let mut sp = self.spins[row + xp] as i32 + self.spins[row + xm] as i32;
                        if ly > 1 {
                            sp += self.spins[north + x] as i32 + self.spins[south + x] as i32;
                        }
                        let tp = self.spins[up + y * lx + x] as i32
                            + self.spins[down + y * lx + x] as i32;
                        proposed += 1;
                        // lint: allow(hot-scalar-spin-loop) — reference scalar kernel the packed path is validated against
                        if rng.metropolis(self.accept.ratio(s, sp, tp)) {
                            self.spins[i] = -s;
                            accepted += 1;
                        }
                    }
                }
            }
        }
        self.metrics.add(self.id_proposed, proposed);
        self.metrics.add(self.id_accepted, accepted);
        if accepted > 0 {
            self.spins_dirty = true;
        }
    }

    /// One Wolff cluster update (grows a single cluster and always flips
    /// it; bond-type-dependent add probabilities `1 − e^{−2K}`).
    pub fn wolff_update<R: Rng64>(&mut self, rng: &mut R) -> usize {
        let _span = qmc_obs::span("tfim.wolff");
        let n = self.spins.len();
        let seed = rng.index(n);
        let (p_s, p_t) = (self.wolff_p_space, self.wolff_p_time);

        self.in_cluster.iter_mut().for_each(|b| *b = false);
        self.stack.clear();
        self.stack.push(seed);
        self.in_cluster[seed] = true;
        let mut size = 0usize;

        while let Some(site) = self.stack.pop() {
            size += 1;
            let (x, y, t) = self.coords(site);
            let s = self.spins[site];
            for (nb, is_t) in self.neighbors(x, y, t) {
                if nb == usize::MAX || self.in_cluster[nb] || self.spins[nb] != s {
                    continue;
                }
                let p = if is_t { p_t } else { p_s };
                if rng.bernoulli(p) {
                    self.in_cluster[nb] = true;
                    self.stack.push(nb);
                }
            }
            self.spins[site] = -s;
        }
        // A Wolff update always flips its (≥ 1 site) cluster.
        self.spins_dirty = true;
        self.metrics.record_named("tfim.wolff_cluster", size as u64);
        size
    }

    /// The raw spacetime configuration, indexed `(t·ly + y)·lx + x` — the
    /// bridge to the bit-packed sweep path (see [`crate::packed`]).
    pub fn export_spins(&self) -> &[i8] {
        &self.spins
    }

    /// Replace the spacetime configuration (±1 per site, same layout as
    /// [`Self::export_spins`]). Used by the packed drivers to hand a
    /// batch-updated configuration back to the scalar engine.
    pub fn import_spins(&mut self, spins: &[i8]) {
        assert_eq!(
            spins.len(),
            self.spins.len(),
            "configuration length mismatch"
        );
        assert!(spins.iter().all(|&s| s == 1 || s == -1), "spins must be ±1");
        self.spins.copy_from_slice(spins);
        self.spins_dirty = true;
    }

    fn coords(&self, i: usize) -> (usize, usize, usize) {
        let m = &self.model;
        let x = i % m.lx;
        let y = (i / m.lx) % m.ly;
        let t = i / (m.lx * m.ly);
        (x, y, t)
    }

    /// Raw bond sums `(ΣSP, ΣT)` over the whole configuration.
    pub fn bond_sums(&self) -> (f64, f64) {
        let m = &self.model;
        let mut sp = 0i64;
        let mut tt = 0i64;
        for t in 0..m.m {
            for y in 0..m.ly {
                for x in 0..m.lx {
                    let s = self.spin(x, y, t) as i64;
                    // Each site owns its +x (and +y) bond: every spatial
                    // bond is counted exactly once.
                    sp += s * self.spin((x + 1) % m.lx, y, t) as i64;
                    if m.ly > 1 {
                        sp += s * self.spin(x, (y + 1) % m.ly, t) as i64;
                    }
                    tt += s * self.spin(x, y, (t + 1) % m.m) as i64;
                }
            }
        }
        (sp as f64, tt as f64)
    }

    /// Measure the current configuration.
    pub fn measure(&self) -> TfimMeasurement {
        let _span = qmc_obs::span("tfim.measure");
        let m = &self.model;
        let n = m.n_sites();
        let (sp, tt) = self.bond_sums();
        let total: i64 = self.spins.iter().map(|&s| s as i64).sum();
        let mag = total as f64 / (n * m.m) as f64;
        TfimMeasurement {
            energy_per_site: self.c.energy(n, m.m, sp, tt) / n as f64,
            abs_m: mag.abs(),
            m2: mag * mag,
            sigma_x: self.c.sigma_x(n, m.m, tt),
        }
    }

    /// Thermalize then record `sweeps` measurements. Each "sweep" is one
    /// Metropolis sweep plus `wolff_per_sweep` cluster updates.
    pub fn run<R: Rng64>(
        &mut self,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
        wolff_per_sweep: usize,
    ) -> TfimSeries {
        for _ in 0..therm {
            self.metropolis_sweep(rng);
            for _ in 0..wolff_per_sweep {
                self.wolff_update(rng);
            }
        }
        let mut series = TfimSeries::default();
        for _ in 0..sweeps {
            self.metropolis_sweep(rng);
            for _ in 0..wolff_per_sweep {
                self.wolff_update(rng);
            }
            series.record(&self.measure());
        }
        series
    }
}

impl SerialTfim {
    fn save_spins(&self, enc: &mut qmc_ckpt::Encoder) {
        let raw: Vec<u8> = self.spins.iter().map(|&s| s as u8).collect();
        enc.bytes(&raw);
    }

    fn load_spins(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let raw = dec.bytes()?;
        if raw.len() != self.spins.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "tfim spins: engine has {} sites, checkpoint has {}",
                self.spins.len(),
                raw.len()
            )));
        }
        for (dst, &b) in self.spins.iter_mut().zip(raw) {
            *dst = match b as i8 {
                s @ (1 | -1) => s,
                s => {
                    return Err(qmc_ckpt::CkptError::corrupt(format!(
                        "tfim spin value {s} is not ±1"
                    )))
                }
            };
        }
        Ok(())
    }
}

impl qmc_ckpt::Checkpoint for SerialTfim {
    fn kind(&self) -> &'static str {
        "engine.tfim.serial"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        self.save_spins(enc);
        qmc_ckpt::registry::save_registry(enc, &self.metrics);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        // The engine must already be constructed with the same model: the
        // configuration is restored, the derived tables are not re-read.
        self.load_spins(dec)?;
        self.spins_dirty = true;
        qmc_ckpt::registry::load_registry(dec, &mut self.metrics)
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut s = qmc_ckpt::DirtySections::new();
        s.push("spins", self.spins_dirty);
        // Counters advance every sweep whether or not a flip landed.
        s.push("metrics", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        match name {
            "spins" => self.save_spins(enc),
            "metrics" => qmc_ckpt::registry::save_registry(enc, &self.metrics),
            _ => panic!("engine.tfim.serial has no checkpoint section {name:?}"),
        }
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        match name {
            "spins" => self.load_spins(dec),
            "metrics" => qmc_ckpt::registry::load_registry(dec, &mut self.metrics),
            _ => Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            }),
        }
    }

    fn mark_clean(&mut self) {
        self.spins_dirty = false;
    }
}

impl qmc_ckpt::Checkpoint for TfimSeries {
    fn kind(&self) -> &'static str {
        "series.tfim"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.f64s(&self.energy);
        enc.f64s(&self.abs_m);
        enc.f64s(&self.m2);
        enc.f64s(&self.sigma_x);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.energy = dec.f64s()?;
        self.abs_m = dec.f64s()?;
        self.m2 = dec.f64s()?;
        self.sigma_x = dec.f64s()?;
        let n = self.energy.len();
        if self.abs_m.len() != n || self.m2.len() != n || self.sigma_x.len() != n {
            return Err(qmc_ckpt::CkptError::corrupt(
                "tfim series columns have unequal lengths",
            ));
        }
        self.clean_rows = 0;
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        use qmc_ckpt::chunk;
        let mut s = qmc_ckpt::DirtySections::new();
        for k in 0..chunk::count(self.len()) {
            s.push(chunk::name(k), chunk::is_dirty(k, self.clean_rows));
        }
        // Head last: it carries the total row count, so restoring it
        // validates that every chunk before it arrived intact.
        s.push("head", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        use qmc_ckpt::chunk;
        if name == "head" {
            enc.u64(self.len() as u64);
            return;
        }
        let k = chunk::parse(name)
            .unwrap_or_else(|| panic!("series.tfim has no checkpoint section {name:?}"));
        enc.u64(k as u64);
        let r = chunk::range(k, self.len());
        enc.f64s(&self.energy[r.clone()]);
        enc.f64s(&self.abs_m[r.clone()]);
        enc.f64s(&self.m2[r.clone()]);
        enc.f64s(&self.sigma_x[r]);
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        use qmc_ckpt::chunk;
        if name == "head" {
            let n = dec.u64()? as usize;
            if n != self.len() {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "tfim series head claims {n} rows, chunks supplied {}",
                    self.len()
                )));
            }
            return Ok(());
        }
        let Some(k) = chunk::parse(name) else {
            return Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            });
        };
        let stored = dec.u64()? as usize;
        if stored != k {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "tfim series chunk {k} carries index {stored}"
            )));
        }
        if k == 0 {
            self.energy.clear();
            self.abs_m.clear();
            self.m2.clear();
            self.sigma_x.clear();
            self.clean_rows = 0;
        }
        if self.len() != k * chunk::ROWS {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "tfim series chunk {k} arrived at row {}",
                self.len()
            )));
        }
        let energy = dec.f64s()?;
        let abs_m = dec.f64s()?;
        let m2 = dec.f64s()?;
        let sigma_x = dec.f64s()?;
        let n = energy.len();
        if n == 0 || n > chunk::ROWS || abs_m.len() != n || m2.len() != n || sigma_x.len() != n {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "tfim series chunk {k} has malformed columns"
            )));
        }
        self.energy.extend_from_slice(&energy);
        self.abs_m.extend_from_slice(&abs_m);
        self.m2.extend_from_slice(&m2);
        self.sigma_x.extend_from_slice(&sigma_x);
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.clean_rows = self.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_ed::tfim::{full_spectrum, thermal, TfimParams};
    use qmc_lattice::Chain;
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    fn model(lx: usize, h: f64, beta: f64, m: usize) -> TfimModel {
        TfimModel {
            lx,
            ly: 1,
            j: 1.0,
            h,
            beta,
            m,
        }
    }

    fn run_chain(lx: usize, h: f64, beta: f64, m: usize, seed: u64, wolff: usize) -> TfimSeries {
        let mut eng = SerialTfim::new(model(lx, h, beta, m));
        let mut rng = Xoshiro256StarStar::new(seed);
        eng.run(&mut rng, 2000, 20_000, wolff)
    }

    /// 4σ + Trotter-bias validation of E and σx against dense ED.
    fn validate(lx: usize, h: f64, beta: f64, m: usize, seed: u64) {
        let series = run_chain(lx, h, beta, m, seed, 1);
        let lat = Chain::new(lx);
        let exact = thermal(&lat, &TfimParams { j: 1.0, h }, beta);
        let e_exact = exact.energy / lx as f64;

        let be = BinningAnalysis::new(&series.energy, 16);
        let trotter = (beta / m as f64).powi(2) * h * 2.0;
        assert!(
            (be.mean - e_exact).abs() < 4.0 * be.error().max(2e-4) + trotter,
            "L={lx} h={h} β={beta} m={m}: E {} ± {} vs {e_exact}",
            be.mean,
            be.error()
        );

        let bx = BinningAnalysis::new(&series.sigma_x, 16);
        assert!(
            (bx.mean - exact.sx).abs() < 4.0 * bx.error().max(2e-4) + trotter,
            "σx {} ± {} vs {}",
            bx.mean,
            bx.error(),
            exact.sx
        );
    }

    #[test]
    fn chain_l4_near_critical_matches_ed() {
        validate(4, 1.0, 1.0, 16, 1);
    }

    #[test]
    fn chain_l4_ordered_phase_matches_ed() {
        validate(4, 0.4, 2.0, 32, 2);
    }

    #[test]
    fn chain_l8_disordered_phase_matches_ed() {
        validate(8, 2.0, 1.0, 32, 3);
    }

    #[test]
    fn metropolis_only_also_matches_ed() {
        // Without cluster updates (pure checkerboard Metropolis — the
        // parallel schedule) the answers must agree too.
        let series = run_chain(4, 1.0, 1.0, 16, 4, 0);
        let lat = Chain::new(4);
        let spec = full_spectrum(&lat, &TfimParams { j: 1.0, h: 1.0 });
        let e_exact = spec.energy(1.0) / 4.0;
        let be = BinningAnalysis::new(&series.energy, 16);
        let trotter = (1.0 / 16.0f64).powi(2) * 2.0;
        assert!(
            (be.mean - e_exact).abs() < 5.0 * be.error().max(2e-4) + trotter,
            "E {} ± {} vs {e_exact}",
            be.mean,
            be.error()
        );
    }

    #[test]
    fn wolff_and_metropolis_sample_same_distribution() {
        let a = run_chain(6, 1.0, 1.5, 16, 5, 0);
        let b = run_chain(6, 1.0, 1.5, 16, 6, 2);
        let ba = BinningAnalysis::new(&a.energy, 16);
        let bb = BinningAnalysis::new(&b.energy, 16);
        let err = (ba.error().powi(2) + bb.error().powi(2)).sqrt().max(5e-4);
        assert!(
            (ba.mean - bb.mean).abs() < 5.0 * err,
            "{} ± {} vs {} ± {}",
            ba.mean,
            ba.error(),
            bb.mean,
            bb.error()
        );
    }

    #[test]
    fn ordered_and_disordered_phases() {
        // Deep FM phase: |m| near 1. Deep PM phase: |m| near 0, σx near 1.
        let fm = run_chain(8, 0.2, 4.0, 32, 7, 2);
        let pm = run_chain(8, 4.0, 4.0, 32, 8, 2);
        let fm_m = fm.abs_m.iter().sum::<f64>() / fm.len() as f64;
        let pm_m = pm.abs_m.iter().sum::<f64>() / pm.len() as f64;
        let pm_sx = pm.sigma_x.iter().sum::<f64>() / pm.len() as f64;
        assert!(fm_m > 0.8, "FM |m| = {fm_m}");
        assert!(pm_m < 0.4, "PM |m| = {pm_m}");
        assert!(pm_sx > 0.9, "PM σx = {pm_sx}");
    }

    #[test]
    fn two_dimensional_small_lattice_runs_and_is_sane() {
        let mut eng = SerialTfim::new(TfimModel {
            lx: 4,
            ly: 4,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        });
        let mut rng = Xoshiro256StarStar::new(9);
        let series = eng.run(&mut rng, 500, 2000, 1);
        let e = series.energy.iter().sum::<f64>() / series.len() as f64;
        // Energy must lie between the trivial bounds −(2J + h) and 0.
        assert!(e < 0.0 && e > -4.0, "E = {e}");
    }

    #[test]
    fn binder_cumulant_limits() {
        // Ordered phase → ≈ 2/3; disordered → near 0.
        let ordered = run_chain(8, 0.2, 4.0, 32, 21, 2);
        let disordered = run_chain(8, 4.0, 4.0, 32, 22, 2);
        let u_ord = ordered.binder_cumulant();
        let u_dis = disordered.binder_cumulant();
        assert!(u_ord > 0.6, "ordered U4 = {u_ord}");
        assert!(u_dis < 0.45, "disordered U4 = {u_dis}");
    }

    #[test]
    fn wolff_cluster_size_bounded_and_positive() {
        let mut eng = SerialTfim::new(model(8, 1.0, 1.0, 8));
        let mut rng = Xoshiro256StarStar::new(10);
        for _ in 0..50 {
            let size = eng.wolff_update(&mut rng);
            assert!((1..=64).contains(&size));
        }
    }

    #[test]
    fn measurement_of_aligned_configuration() {
        let eng = SerialTfim::new(model(4, 1.0, 1.0, 4));
        let meas = eng.measure();
        assert_eq!(meas.abs_m, 1.0);
        assert_eq!(meas.m2, 1.0);
        // ΣSP = 4 bonds × 4 slices, ΣT = 4 sites × 4 slices.
        let (sp, tt) = eng.bond_sums();
        assert_eq!(sp, 16.0);
        assert_eq!(tt, 16.0);
    }

    #[test]
    fn table_sweep_reproduces_exp_reference_trajectory() {
        // The table-driven kernel must replay the exp-per-proposal
        // reference bit-for-bit: identical spins after identical seeds,
        // which proves the optimization perturbs no random-number draw.
        let reference_sweep = |eng: &mut SerialTfim, rng: &mut Xoshiro256StarStar| {
            let m = eng.model;
            for color in 0..2usize {
                for t in 0..m.m {
                    for y in 0..m.ly {
                        for x in 0..m.lx {
                            if (x + y + t) % 2 != color {
                                continue;
                            }
                            let cost = eng.flip_cost(x, y, t);
                            if rng.metropolis((-cost).exp()) {
                                let i = eng.idx(x, y, t);
                                eng.spins[i] = -eng.spins[i];
                            }
                        }
                    }
                }
            }
        };
        for m in [
            model(8, 1.3, 1.7, 8),
            TfimModel {
                lx: 4,
                ly: 4,
                j: 1.0,
                h: 2.0,
                beta: 1.0,
                m: 8,
            },
        ] {
            let mut fast = SerialTfim::new(m);
            let mut slow = SerialTfim::new(m);
            let mut rng_fast = Xoshiro256StarStar::new(31);
            let mut rng_slow = Xoshiro256StarStar::new(31);
            for _ in 0..25 {
                fast.metropolis_sweep(&mut rng_fast);
                reference_sweep(&mut slow, &mut rng_slow);
                assert_eq!(fast.spins, slow.spins);
            }
        }
    }

    #[test]
    fn flip_cost_consistent_with_bond_sums() {
        // ΔS must equal the actual change in −K·Σss′ under the flip.
        let mut eng = SerialTfim::new(model(6, 0.9, 1.3, 6));
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..20 {
            eng.metropolis_sweep(&mut rng);
        }
        let action = |e: &SerialTfim| {
            let (sp, tt) = e.bond_sums();
            -(e.c.k_space * sp + e.c.k_time * tt)
        };
        for (x, y, t) in [(0, 0, 0), (3, 0, 2), (5, 0, 5)] {
            let before = action(&eng);
            let cost = eng.flip_cost(x, y, t);
            let i = eng.idx(x, y, t);
            eng.spins[i] = -eng.spins[i];
            let after = action(&eng);
            eng.spins[i] = -eng.spins[i];
            assert!(
                ((after - before) - cost).abs() < 1e-10,
                "ΔS {} vs cost {}",
                after - before,
                cost
            );
        }
    }
}
