//! Path-integral QMC for the transverse-field Ising model (TFIM), with a
//! domain-decomposed massively parallel implementation.
//!
//! `H = −J Σ_{⟨ij⟩} σᶻσᶻ − h Σ_i σˣ`  on a chain or square lattice.
//!
//! # Suzuki-Trotter mapping
//!
//! With `m` imaginary-time slices (`Δτ = β/m`) the quantum model maps onto
//! a `(d+1)`-dimensional *anisotropic classical Ising* system:
//!
//! * spatial coupling `K_s = Δτ J` between neighbours within a slice,
//! * temporal coupling `K_τ = −½ ln tanh(Δτ h)` between a site's copies in
//!   adjacent slices,
//! * prefactor `C^{Nm}` with `C² = ½ sinh(2Δτ h)`.
//!
//! All estimators (energy, `⟨σˣ⟩`) follow from τ-derivatives of `ln Z`;
//! see [`StCouplings`] for the exact expressions, which are validated
//! against the exact-diagonalization oracle in the tests.
//!
//! # Why this engine carries the parallel experiments
//!
//! The mapped model is a classical spin system with *strictly local*
//! couplings, so the classic mesh-machine recipe applies verbatim: block
//! domain decomposition of the spatial lattice, one-cell ghost frames,
//! checkerboard (parity of `x+y+t`) sweep halves with a halo exchange in
//! between — same-parity sites are conditionally independent, so the
//! parallel sweep is *exactly* a sequential sweep in a different order,
//! preserving detailed balance. This is the engine behind the T1/T2/T3
//! scaling tables.
//!
//! [`serial`] holds the single-memory engine (Metropolis + Wolff cluster
//! updates); [`parallel`] the distributed engine over any
//! [`qmc_comm::Communicator`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packed;
pub mod parallel;
pub mod serial;

/// Model parameters for the quantum TFIM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfimModel {
    /// Spatial extent in x (≥ 2, even for periodic checkerboard).
    pub lx: usize,
    /// Spatial extent in y (1 = chain; even ≥ 2 for a square lattice).
    pub ly: usize,
    /// Ferromagnetic coupling `J > 0`.
    pub j: f64,
    /// Transverse field `h > 0` (the mapping needs `tanh(Δτh) > 0`).
    pub h: f64,
    /// Inverse temperature β.
    pub beta: f64,
    /// Trotter slices `m` (even, so the time direction checkerboards).
    pub m: usize,
}

impl TfimModel {
    /// Validate and return self (panics on unusable parameters).
    pub fn validated(self) -> Self {
        // ≥ 4 in each periodic direction so a neighbour never coincides
        // with the site's other neighbour (the L = 2 double-bond corner
        // case is excluded; the exact-diagonalization oracle covers it).
        assert!(
            self.lx >= 4 && self.lx.is_multiple_of(2),
            "lx must be even ≥ 4"
        );
        assert!(
            self.ly == 1 || (self.ly >= 4 && self.ly.is_multiple_of(2)),
            "ly must be 1 (chain) or even ≥ 4"
        );
        assert!(self.j > 0.0, "J must be positive");
        assert!(self.h > 0.0, "h must be positive (ST mapping)");
        assert!(self.beta > 0.0, "β must be positive");
        assert!(
            self.m >= 2 && self.m.is_multiple_of(2),
            "m must be even ≥ 2"
        );
        self
    }

    /// Number of spatial sites.
    pub fn n_sites(&self) -> usize {
        self.lx * self.ly
    }

    /// `Δτ = β/m`.
    pub fn dtau(&self) -> f64 {
        self.beta / self.m as f64
    }

    /// The classical couplings of the mapped model.
    pub fn couplings(&self) -> StCouplings {
        StCouplings::new(self.j, self.h, self.dtau())
    }
}

/// Suzuki-Trotter couplings and estimator coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StCouplings {
    /// Spatial coupling `K_s = Δτ J`.
    pub k_space: f64,
    /// Temporal coupling `K_τ = −½ ln tanh(Δτ h)`.
    pub k_time: f64,
    /// `Δτ`.
    pub dtau: f64,
    /// `J`.
    pub j: f64,
    /// `h`.
    pub h: f64,
}

impl StCouplings {
    /// Derive the couplings.
    pub fn new(j: f64, h: f64, dtau: f64) -> Self {
        assert!(h > 0.0 && dtau > 0.0);
        let th = (dtau * h).tanh();
        Self {
            k_space: dtau * j,
            k_time: -0.5 * th.ln(),
            dtau,
            j,
            h,
        }
    }

    /// Quantum energy estimator from classical bond sums:
    ///
    /// `E = −N h coth(2Δτh) − (J/m)·ΣSP + (h / (m sinh(2Δτh)))·ΣT`
    ///
    /// where `ΣSP` (`ΣT`) is the sum of `s·s'` over all spatial (temporal)
    /// bonds of the space-time configuration, `N` the number of spatial
    /// sites and `m` the slice count.
    pub fn energy(&self, n_sites: usize, m: usize, sp_sum: f64, t_sum: f64) -> f64 {
        let x = 2.0 * self.dtau * self.h;
        let coth = x.cosh() / x.sinh();
        -(n_sites as f64) * self.h * coth - self.j * sp_sum / m as f64
            + self.h * t_sum / (m as f64 * x.sinh())
    }

    /// `⟨σˣ⟩` estimator per site:
    /// `coth(2Δτh) − ΣT/(N m sinh(2Δτh))`.
    pub fn sigma_x(&self, n_sites: usize, m: usize, t_sum: f64) -> f64 {
        let x = 2.0 * self.dtau * self.h;
        x.cosh() / x.sinh() - t_sum / (n_sites as f64 * m as f64 * x.sinh())
    }
}

/// Precomputed Metropolis acceptance-ratio table for the mapped classical
/// model, shared by the serial and distributed engines.
///
/// The flip cost of a site with spin `s` is
/// `ΔS = 2 s (K_s·sp + K_τ·tp)` where `sp ∈ [−4, 4]` is the sum of the
/// (≤ 4) spatial neighbour spins and `tp ∈ {−2, 0, 2}` the sum of the two
/// temporal neighbours. That is a domain of 2·9·3 = 54 points, so the
/// acceptance ratio `e^{−ΔS}` is tabulated once per `(J, h, β, m)` and the
/// sweep kernels never call a transcendental function.
///
/// Layout: `t[(s+1)/2][sp + 4][(tp + 2)/2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptTable {
    t: [[[f64; 3]; 9]; 2],
}

impl AcceptTable {
    /// Tabulate `e^{−ΔS}` over the full `(s, sp, tp)` domain. The entries
    /// are bit-identical to evaluating `(-cost).exp()` inline because the
    /// cost expression is written in the exact same operation order the
    /// kernels previously used.
    pub fn new(c: &StCouplings) -> Self {
        let mut t = [[[0.0; 3]; 9]; 2];
        for (si, s) in [-1.0f64, 1.0].iter().enumerate() {
            for sp in -4i32..=4 {
                for (ti, tp) in [-2.0f64, 0.0, 2.0].iter().enumerate() {
                    let cost = 2.0 * s * (c.k_space * sp as f64 + c.k_time * tp);
                    t[si][(sp + 4) as usize][ti] = (-cost).exp();
                }
            }
        }
        Self { t }
    }

    /// Acceptance ratio `min(1, e^{−ΔS})`-style raw ratio `e^{−ΔS}` for a
    /// site with spin `s`, spatial neighbour sum `sp` and temporal
    /// neighbour sum `tp`.
    #[inline(always)]
    pub fn ratio(&self, s: i8, sp: i32, tp: i32) -> f64 {
        debug_assert!(s == 1 || s == -1);
        debug_assert!((-4..=4).contains(&sp));
        debug_assert!(tp == -2 || tp == 0 || tp == 2);
        self.t[((s + 1) / 2) as usize][(sp + 4) as usize][((tp + 2) / 2) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_table_matches_direct_exp_over_full_domain() {
        // Property test over the complete (s, sp, tp) domain for several
        // coupling sets: the table must equal the direct evaluation
        // bit-for-bit (same operation order), so swapping the kernels to
        // table lookups cannot perturb any random-number trajectory.
        for (j, h, beta, m) in [
            (1.0, 1.0, 1.0, 16usize),
            (1.0, 0.4, 2.0, 32),
            (0.7, 2.5, 0.5, 8),
            (2.0, 0.05, 4.0, 64),
        ] {
            let c = StCouplings::new(j, h, beta / m as f64);
            let table = AcceptTable::new(&c);
            for s in [-1i8, 1] {
                for sp in -4i32..=4 {
                    for tp in [-2i32, 0, 2] {
                        let cost = 2.0 * s as f64 * (c.k_space * sp as f64 + c.k_time * tp as f64);
                        let direct = (-cost).exp();
                        assert_eq!(
                            table.ratio(s, sp, tp).to_bits(),
                            direct.to_bits(),
                            "J={j} h={h} β={beta} m={m} s={s} sp={sp} tp={tp}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn couplings_known_limits() {
        // Δτh small: K_τ ≈ −½ ln(Δτh) (large); K_s = ΔτJ.
        let c = StCouplings::new(1.0, 1.0, 0.01);
        assert!((c.k_space - 0.01).abs() < 1e-15);
        assert!(c.k_time > 2.0);
        // Δτh large: K_τ → 0⁺.
        let c2 = StCouplings::new(1.0, 1.0, 5.0);
        assert!(c2.k_time > 0.0 && c2.k_time < 1e-4);
    }

    #[test]
    fn model_validation_catches_bad_input() {
        let good = TfimModel {
            lx: 8,
            ly: 1,
            j: 1.0,
            h: 0.5,
            beta: 2.0,
            m: 8,
        };
        good.validated();
        let check_panics = |f: Box<dyn Fn() -> TfimModel + std::panic::UnwindSafe>| {
            assert!(std::panic::catch_unwind(move || f().validated()).is_err());
        };
        check_panics(Box::new(move || TfimModel { lx: 7, ..good }));
        check_panics(Box::new(move || TfimModel { ly: 3, ..good }));
        check_panics(Box::new(move || TfimModel { h: 0.0, ..good }));
        check_panics(Box::new(move || TfimModel { m: 3, ..good }));
        check_panics(Box::new(move || TfimModel { j: -1.0, ..good }));
    }

    #[test]
    fn energy_estimator_fully_aligned_classical_limit() {
        // All spins aligned: ΣSP = n_bonds·m, ΣT = N·m. As Δτh → ∞ the
        // temporal term vanishes (coth→1, 1/sinh→0) and
        // E → −N h − J·n_bonds: the classical aligned energy plus the
        // field term saturated.
        let c = StCouplings::new(1.0, 1.0, 20.0);
        let n = 8;
        let m = 4;
        let n_bonds = 8; // chain of 8
        let e = c.energy(n, m, (n_bonds * m) as f64, (n * m) as f64);
        assert!((e - (-(n as f64) - n_bonds as f64)).abs() < 1e-6, "E = {e}");
    }

    #[test]
    fn sigma_x_bounds() {
        // ΣT = Nm (all temporal bonds aligned) gives the minimal σx;
        // fully anti-aligned gives the max. Both must lie in [−1, 1]-ish
        // physical range for sane Δτ.
        let c = StCouplings::new(1.0, 0.8, 0.05);
        let lo = c.sigma_x(10, 20, (10 * 20) as f64);
        let hi = c.sigma_x(10, 20, -((10 * 20) as f64));
        assert!(lo < hi);
        assert!(lo > -0.2, "lo = {lo}");
    }
}
