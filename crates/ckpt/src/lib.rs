//! Deterministic checkpoint/restart for QMC runs.
//!
//! A 1993-scale machine loses nodes mid-run; a trajectory that cannot be
//! resumed is a trajectory lost. This crate provides the serialization
//! substrate: a [`Checkpoint`] trait over a versioned, length-prefixed
//! binary wire format (schema [`SCHEMA`]) with per-section CRC32, an
//! atomic on-disk [`CkptStore`] (write-to-temp + rename, retain last K,
//! fall back past torn or CRC-bad generations), and rank-0-coordinated
//! [`coord`] write/restore over any [`qmc_comm::Communicator`].
//!
//! The contract every implementor must honor: after `save` → `load` into
//! a freshly constructed value, the resumed object continues the
//! *identical* fixed-seed trajectory, bit for bit, as one that was never
//! interrupted. RNG state (including undrained buffers), engine spins,
//! operator strings, accumulated series, and acceptance counters all
//! therefore round-trip exactly.

mod crc32;
mod file;
mod store;
mod wire;

pub mod coord;
pub mod delta;
pub mod registry;

pub use crc32::crc32;
pub use delta::{RawCkpt, SectionData, SectionPlan, SCHEMA_V2};
pub use file::{CkptFile, SCHEMA};
pub use store::{namespace_key, CkptStore};
pub use wire::{CkptError, Decoder, Encoder};

/// Named sections of a [`Checkpoint`] value with a changed-since-last-
/// snapshot flag per section, in a canonical order the save and restore
/// paths both follow. Produced by [`Checkpoint::dirty_sections`].
#[derive(Debug, Clone, Default)]
pub struct DirtySections {
    entries: Vec<(String, bool)>,
}

impl DirtySections {
    /// Empty section list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section; `dirty` marks it changed since the last
    /// [`Checkpoint::mark_clean`].
    pub fn push(&mut self, name: impl Into<String>, dirty: bool) {
        self.entries.push((name.into(), dirty));
    }

    /// Section list where every named section is always dirty.
    pub fn always(names: &[&str]) -> Self {
        Self {
            entries: names.iter().map(|n| (n.to_string(), true)).collect(),
        }
    }

    /// `(name, dirty)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, bool)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sections are listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// State that can be snapshotted into the `qmc-ckpt/v1` wire format and
/// restored bit-exactly into a freshly constructed value of the same
/// shape (same lattice size, same RNG kind, …).
///
/// The sectioned methods (`dirty_sections` / `save_section` /
/// `load_section` / `mark_clean`) power incremental (delta)
/// checkpointing: a value splits its state into named sections and
/// reports which of them changed since the last successful snapshot, so
/// a delta file can store unchanged sections as 8-byte base references
/// (see [`delta`]). The defaults expose the whole state as a single
/// always-dirty `"state"` section, which keeps every existing
/// implementation correct (just never smaller than a full snapshot).
pub trait Checkpoint {
    /// Stable type tag written ahead of the payload; `load` rejects a
    /// payload whose tag does not match (e.g. resuming an SSE run with
    /// a worldline checkpoint).
    fn kind(&self) -> &'static str;

    /// Append this value's state to `enc`.
    fn save(&self, enc: &mut Encoder);

    /// Overwrite `self` from `dec`. Implementations validate structural
    /// parameters (lattice sizes, table lengths) before mutating and
    /// return [`CkptError::Corrupt`] on mismatch.
    fn load(&mut self, dec: &mut Decoder) -> Result<(), CkptError>;

    /// Named sections with changed-since-last-snapshot flags. A flag may
    /// be conservatively `true` for an unchanged section (costs bytes,
    /// never correctness); a `false` flag for a changed section would
    /// silently resurrect stale state on restore, so implementations
    /// must only clear flags in mutation-free paths.
    fn dirty_sections(&self) -> DirtySections {
        DirtySections::always(&["state"])
    }

    /// Serialize one named section from [`Checkpoint::dirty_sections`].
    /// Panics on an unknown name (caller bug, not external input).
    fn save_section(&self, name: &str, enc: &mut Encoder) {
        assert_eq!(
            name,
            "state",
            "{} has no checkpoint section {name:?}",
            self.kind()
        );
        self.save(enc);
    }

    /// Restore one named section. Sections arrive in the order
    /// [`Checkpoint::save_section`] wrote them (file order).
    fn load_section(&mut self, name: &str, dec: &mut Decoder) -> Result<(), CkptError> {
        if name != "state" {
            return Err(CkptError::MissingSection {
                name: name.to_string(),
            });
        }
        self.load(dec)
    }

    /// Every section has just been captured in a successful snapshot (or
    /// restored from one): reset all dirty flags. Callers must only
    /// invoke this after the write is durably on disk — clearing flags
    /// for a failed write corrupts the next delta.
    fn mark_clean(&mut self) {}
}

/// Serialize one [`Checkpoint`] value to a standalone byte vector
/// (kind tag + length-prefixed body).
pub fn save_state(state: &impl Checkpoint) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.state(state);
    enc.into_bytes()
}

/// Restore one [`Checkpoint`] value from bytes produced by
/// [`save_state`], requiring the payload to be fully consumed.
pub fn load_state(bytes: &[u8], state: &mut impl Checkpoint) -> Result<(), CkptError> {
    let mut dec = Decoder::new(bytes);
    dec.load_state(state)?;
    dec.expect_empty()
}

/// Serialize section `name` of `state` as a standalone byte vector:
/// kind tag + length-prefixed section body (the sectioned counterpart of
/// [`save_state`], so type mismatches are still caught per section).
pub fn save_section_bytes(state: &impl Checkpoint, name: &str) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.str(state.kind());
    let mut body = Encoder::new();
    state.save_section(name, &mut body);
    enc.bytes(&body.into_bytes());
    enc.into_bytes()
}

/// Restore section `name` of `state` from bytes produced by
/// [`save_section_bytes`], verifying the kind tag and requiring the body
/// to be fully consumed.
pub fn load_section_bytes(
    bytes: &[u8],
    name: &str,
    state: &mut impl Checkpoint,
) -> Result<(), CkptError> {
    let mut dec = Decoder::new(bytes);
    let found = dec.str()?;
    if found != state.kind() {
        return Err(CkptError::KindMismatch {
            expected: state.kind().to_string(),
            found,
        });
    }
    let body = dec.bytes()?;
    dec.expect_empty()?;
    let mut sub = Decoder::new(body);
    state.load_section(name, &mut sub)?;
    sub.expect_empty()
}

/// Append `state`'s sections to a write plan under `prefix/…` names.
/// When `delta` is set, clean sections are planned as base references
/// (no payload serialized at all); otherwise every section is a payload.
pub fn plan_sections(
    plan: &mut Vec<(String, SectionPlan)>,
    prefix: &str,
    state: &impl Checkpoint,
    delta: bool,
) {
    for (name, dirty) in state.dirty_sections().iter() {
        let full_name = format!("{prefix}/{name}");
        if dirty || !delta {
            plan.push((
                full_name,
                SectionPlan::Payload(save_section_bytes(state, name)),
            ));
        } else {
            plan.push((full_name, SectionPlan::Clean));
        }
    }
}

/// Restore `state` from every `prefix/…` section of a materialized
/// file, in file order. Errors if the file holds no such sections (a
/// monolithic v1-era layout should take the [`CkptFile::restore`] path
/// instead).
pub fn restore_sections(
    file: &CkptFile,
    prefix: &str,
    state: &mut impl Checkpoint,
) -> Result<(), CkptError> {
    let p = format!("{prefix}/");
    let mut found = false;
    for (name, payload) in file.sections() {
        if let Some(rest) = name.strip_prefix(p.as_str()) {
            found = true;
            load_section_bytes(payload, rest, state)?;
        }
    }
    if !found {
        return Err(CkptError::MissingSection {
            name: format!("{prefix}/*"),
        });
    }
    state.mark_clean();
    Ok(())
}

/// Fixed-size row chunking for append-only measurement series.
///
/// A growing time series dominates full-snapshot bytes in steady state;
/// splitting it into immutable completed chunks (`rows/0`, `rows/1`, …)
/// plus a small always-dirty head makes most of those bytes clean, which
/// is where delta checkpoints win. A chunk is dirty iff a row was
/// appended past the last snapshot's row count overlaps it — completed
/// chunks below that mark never change again.
pub mod chunk {
    /// Rows per chunk.
    pub const ROWS: usize = 64;

    /// Number of chunks covering `len` rows (0 for an empty series).
    pub fn count(len: usize) -> usize {
        len.div_ceil(ROWS)
    }

    /// True when chunk `k` overlaps rows appended after `clean_rows`.
    pub fn is_dirty(k: usize, clean_rows: usize) -> bool {
        (k + 1) * ROWS > clean_rows
    }

    /// Row range of chunk `k` in a series of `len` rows.
    pub fn range(k: usize, len: usize) -> core::ops::Range<usize> {
        k * ROWS..len.min((k + 1) * ROWS)
    }

    /// Section name of chunk `k`.
    pub fn name(k: usize) -> String {
        format!("rows/{k}")
    }

    /// Parse a chunk index back out of a section name.
    pub fn parse(name: &str) -> Option<usize> {
        name.strip_prefix("rows/")?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: u64,
        b: Vec<f64>,
    }

    impl Checkpoint for Toy {
        fn kind(&self) -> &'static str {
            "test.toy"
        }
        fn save(&self, enc: &mut Encoder) {
            enc.u64(self.a);
            enc.f64s(&self.b);
        }
        fn load(&mut self, dec: &mut Decoder) -> Result<(), CkptError> {
            self.a = dec.u64()?;
            self.b = dec.f64s()?;
            Ok(())
        }
    }

    #[test]
    fn state_round_trips() {
        let orig = Toy {
            a: 42,
            b: vec![1.5, -0.0, f64::MIN_POSITIVE],
        };
        let bytes = save_state(&orig);
        let mut back = Toy { a: 0, b: vec![] };
        load_state(&bytes, &mut back).unwrap();
        assert_eq!(back.a, 42);
        assert_eq!(
            back.b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            orig.b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        struct Other;
        impl Checkpoint for Other {
            fn kind(&self) -> &'static str {
                "test.other"
            }
            fn save(&self, _: &mut Encoder) {}
            fn load(&mut self, _: &mut Decoder) -> Result<(), CkptError> {
                Ok(())
            }
        }
        let bytes = save_state(&Other);
        let mut toy = Toy { a: 0, b: vec![] };
        assert!(matches!(
            load_state(&bytes, &mut toy),
            Err(CkptError::KindMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = save_state(&Toy { a: 1, b: vec![] });
        bytes.push(0);
        let mut back = Toy { a: 0, b: vec![] };
        assert!(load_state(&bytes, &mut back).is_err());
    }
}
