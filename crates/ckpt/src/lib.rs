//! Deterministic checkpoint/restart for QMC runs.
//!
//! A 1993-scale machine loses nodes mid-run; a trajectory that cannot be
//! resumed is a trajectory lost. This crate provides the serialization
//! substrate: a [`Checkpoint`] trait over a versioned, length-prefixed
//! binary wire format (schema [`SCHEMA`]) with per-section CRC32, an
//! atomic on-disk [`CkptStore`] (write-to-temp + rename, retain last K,
//! fall back past torn or CRC-bad generations), and rank-0-coordinated
//! [`coord`] write/restore over any [`qmc_comm::Communicator`].
//!
//! The contract every implementor must honor: after `save` → `load` into
//! a freshly constructed value, the resumed object continues the
//! *identical* fixed-seed trajectory, bit for bit, as one that was never
//! interrupted. RNG state (including undrained buffers), engine spins,
//! operator strings, accumulated series, and acceptance counters all
//! therefore round-trip exactly.

mod crc32;
mod file;
mod store;
mod wire;

pub mod coord;
pub mod registry;

pub use crc32::crc32;
pub use file::{CkptFile, SCHEMA};
pub use store::CkptStore;
pub use wire::{CkptError, Decoder, Encoder};

/// State that can be snapshotted into the `qmc-ckpt/v1` wire format and
/// restored bit-exactly into a freshly constructed value of the same
/// shape (same lattice size, same RNG kind, …).
pub trait Checkpoint {
    /// Stable type tag written ahead of the payload; `load` rejects a
    /// payload whose tag does not match (e.g. resuming an SSE run with
    /// a worldline checkpoint).
    fn kind(&self) -> &'static str;

    /// Append this value's state to `enc`.
    fn save(&self, enc: &mut Encoder);

    /// Overwrite `self` from `dec`. Implementations validate structural
    /// parameters (lattice sizes, table lengths) before mutating and
    /// return [`CkptError::Corrupt`] on mismatch.
    fn load(&mut self, dec: &mut Decoder) -> Result<(), CkptError>;
}

/// Serialize one [`Checkpoint`] value to a standalone byte vector
/// (kind tag + length-prefixed body).
pub fn save_state(state: &impl Checkpoint) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.state(state);
    enc.into_bytes()
}

/// Restore one [`Checkpoint`] value from bytes produced by
/// [`save_state`], requiring the payload to be fully consumed.
pub fn load_state(bytes: &[u8], state: &mut impl Checkpoint) -> Result<(), CkptError> {
    let mut dec = Decoder::new(bytes);
    dec.load_state(state)?;
    dec.expect_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: u64,
        b: Vec<f64>,
    }

    impl Checkpoint for Toy {
        fn kind(&self) -> &'static str {
            "test.toy"
        }
        fn save(&self, enc: &mut Encoder) {
            enc.u64(self.a);
            enc.f64s(&self.b);
        }
        fn load(&mut self, dec: &mut Decoder) -> Result<(), CkptError> {
            self.a = dec.u64()?;
            self.b = dec.f64s()?;
            Ok(())
        }
    }

    #[test]
    fn state_round_trips() {
        let orig = Toy {
            a: 42,
            b: vec![1.5, -0.0, f64::MIN_POSITIVE],
        };
        let bytes = save_state(&orig);
        let mut back = Toy { a: 0, b: vec![] };
        load_state(&bytes, &mut back).unwrap();
        assert_eq!(back.a, 42);
        assert_eq!(
            back.b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            orig.b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        struct Other;
        impl Checkpoint for Other {
            fn kind(&self) -> &'static str {
                "test.other"
            }
            fn save(&self, _: &mut Encoder) {}
            fn load(&mut self, _: &mut Decoder) -> Result<(), CkptError> {
                Ok(())
            }
        }
        let bytes = save_state(&Other);
        let mut toy = Toy { a: 0, b: vec![] };
        assert!(matches!(
            load_state(&bytes, &mut toy),
            Err(CkptError::KindMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = save_state(&Toy { a: 1, b: vec![] });
        bytes.push(0);
        let mut back = Toy { a: 0, b: vec![] };
        assert!(load_state(&bytes, &mut back).is_err());
    }
}
