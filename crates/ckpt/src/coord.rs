//! Rank-0-coordinated checkpointing over any [`Communicator`].
//!
//! Each rank serializes its local state; rank 0 gathers all of it and
//! writes a single atomic file. Two layouts exist: the legacy one from
//! [`write_coordinated`] (one opaque `rank{r}` section holding each
//! rank's whole serialized [`CkptFile`]) and the sectioned one from
//! [`write_coordinated_sections`] (flattened `rank{r}/{name}` sections,
//! which is what lets a delta write reference an individual rank's
//! unchanged section in the base generation). On restore, rank 0 loads
//! the newest valid generation — validating that its rank coverage
//! matches the *current* world size — and broadcasts the whole file;
//! every rank then extracts its own sections from either layout.
//! Because the gather/broadcast ride the existing deterministic
//! collectives, a checkpoint round never perturbs the fixed-seed
//! trajectory — it draws no random numbers and exchanges no user-tag
//! messages.

use crate::delta::SectionPlan;
use crate::wire::{Decoder, Encoder};
use crate::{CkptFile, CkptStore};
use qmc_comm::Communicator;
use std::path::PathBuf;

/// Section name for a rank's payload inside the coordinated file.
fn rank_section(rank: usize) -> String {
    format!("rank{rank}")
}

/// Gather every rank's `local` file at rank 0 and write generation
/// `generation` atomically. Returns the written path on rank 0 (`None`
/// elsewhere, and `None` on rank 0 if the write failed — a checkpoint
/// write failure must not kill a healthy run, so it is reported, not
/// propagated).
pub fn write_coordinated<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
    generation: u64,
    local: &CkptFile,
) -> Option<PathBuf> {
    let bytes = local.to_bytes();
    let gathered = comm.gather_bytes(0, &bytes)?;
    let mut outer = CkptFile::new();
    for (rank, payload) in gathered.into_iter().enumerate() {
        outer.add(&rank_section(rank), payload);
    }
    match store.write(generation, &outer) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!(
                "warning: checkpoint generation {generation} not written ({e}); run continues"
            );
            None
        }
    }
}

/// Gather every rank's *section plan* at rank 0 and write generation
/// `generation` as a full snapshot or a delta against the store's
/// cached base. Rank 0 decides (`delta` = not `want_full` and a base
/// exists) and broadcasts the decision before `build` runs, so every
/// rank serializes — or skips — the same sections; clean sections in a
/// delta round are never serialized at all. The gathered plans are
/// flattened into `rank{r}/{name}` global sections.
///
/// Returns `(path, committed)`: the written path on rank 0 (`None`
/// elsewhere, and on a failed write, which is reported, not
/// propagated), and a *rank-consistent* commit flag. Callers must gate
/// `mark_clean` on `committed` — clearing dirty flags for a write that
/// never landed would make the next delta reference state the base
/// doesn't hold.
pub fn write_coordinated_sections<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
    generation: u64,
    want_full: bool,
    build: impl FnOnce(bool) -> Vec<(String, SectionPlan)>,
) -> (Option<PathBuf>, bool) {
    // Only rank 0 owns the store's base cache, so only it can decide
    // full-vs-delta; the decision must reach every rank before any plan
    // is built. The base must be strictly older than `generation`:
    // resuming exactly at a checkpoint boundary would otherwise re-write
    // this generation as a delta against itself.
    let decision = if comm.rank() == 0 {
        vec![u8::from(
            !want_full && store.delta_base().is_some_and(|b| b < generation),
        )]
    } else {
        Vec::new()
    };
    let decision = comm.broadcast_bytes(0, decision);
    let delta = decision.first() == Some(&1);

    let plan = build(delta);
    let mut enc = Encoder::new();
    enc.u64(plan.len() as u64);
    for (name, p) in &plan {
        enc.str(name);
        match p {
            SectionPlan::Payload(b) => {
                enc.u8(0);
                enc.bytes(b);
            }
            SectionPlan::Clean => enc.u8(1),
        }
    }
    let local = enc.into_bytes();

    let path = comm.gather_bytes(0, &local).and_then(|gathered| {
        let mut global = Vec::new();
        for (rank, payload) in gathered.into_iter().enumerate() {
            if decode_plan(&payload, rank, &mut global).is_none() {
                eprintln!(
                    "warning: checkpoint generation {generation}: rank {rank} plan unreadable; \
                     generation skipped"
                );
                return None;
            }
        }
        // Chain bounding is the caller's policy: every driver derives
        // `want_full` from its full-snapshot cadence before calling in.
        // lint: allow(ckpt-unbounded-chain) — bounded by the caller's want_full
        match store.write_plan(generation, global, delta) {
            Ok(path) => Some(path),
            Err(e) => {
                eprintln!(
                    "warning: checkpoint generation {generation} not written ({e}); run continues"
                );
                None
            }
        }
    });

    // Second broadcast: did the write land? All ranks must agree before
    // any of them clears dirty flags.
    let ack = if comm.rank() == 0 {
        vec![u8::from(path.is_some())]
    } else {
        Vec::new()
    };
    let ack = comm.broadcast_bytes(0, ack);
    (path, ack.first() == Some(&1))
}

/// Decode one rank's serialized section plan into `out` under
/// `rank{rank}/…` names. `None` on any framing error.
fn decode_plan(bytes: &[u8], rank: usize, out: &mut Vec<(String, SectionPlan)>) -> Option<()> {
    let mut dec = Decoder::new(bytes);
    let n = dec.u64().ok()?;
    for _ in 0..n {
        let name = dec.str().ok()?;
        let plan = match dec.u8().ok()? {
            0 => SectionPlan::Payload(dec.bytes().ok()?.to_vec()),
            1 => SectionPlan::Clean,
            _ => return None,
        };
        out.push((format!("rank{rank}/{name}"), plan));
    }
    dec.expect_empty().ok()?;
    Some(())
}

/// Number of ranks a coordinated file covers, from its section names
/// (`rank{r}` legacy or `rank{r}/{name}` flattened). `None` unless the
/// ranks present are exactly the contiguous range `0..n` — a file with
/// gaps or foreign sections is not a coordinated checkpoint this world
/// can resume from.
fn covered_ranks(outer: &CkptFile) -> Option<usize> {
    let mut ranks: Vec<usize> = Vec::new();
    for name in outer.section_names() {
        let rest = name.strip_prefix("rank")?;
        let digits = rest.split('/').next().unwrap_or(rest);
        let r: usize = digits.parse().ok()?;
        if !ranks.contains(&r) {
            ranks.push(r);
        }
    }
    let n = ranks.len();
    ((n > 0) && (0..n).all(|r| ranks.contains(&r))).then_some(n)
}

/// Decode the restore broadcast `[present u8][generation u64][file
/// bytes]`. Degrades to `None` — with a warning, never a panic — on a
/// truncated or unparsable message, honoring the restore contract that
/// corrupt bytes mean "no checkpoint", not a crash.
fn decode_restore_broadcast(me: usize, msg: &[u8]) -> Option<(u64, CkptFile)> {
    if msg.first() != Some(&1) {
        return None;
    }
    let Some(gen_bytes) = msg.get(1..9) else {
        eprintln!(
            "warning: rank {me}: broadcast checkpoint truncated ({} bytes); resuming fresh",
            msg.len()
        );
        return None;
    };
    let generation = u64::from_le_bytes(gen_bytes.try_into().expect("slice is exactly 8 bytes"));
    match CkptFile::from_bytes(&msg[9..]) {
        Ok(f) => Some((generation, f)),
        Err(e) => {
            // Rank 0 already validated; a broadcast that corrupts bytes
            // would be a comm bug, but degrade to "no checkpoint".
            eprintln!("warning: rank {me}: broadcast checkpoint unreadable ({e})");
            None
        }
    }
}

/// This rank's local file, extracted from either coordinated layout:
/// the legacy opaque `rank{me}` section, or the flattened
/// `rank{me}/{name}` sections (in file order, prefix stripped).
fn extract_rank_file(outer: &CkptFile, me: usize) -> Option<CkptFile> {
    if let Some(mine) = outer.get(&rank_section(me)) {
        return CkptFile::from_bytes(mine).ok();
    }
    let prefix = format!("rank{me}/");
    let mut file = CkptFile::new();
    for (name, payload) in outer.sections() {
        if let Some(rest) = name.strip_prefix(prefix.as_str()) {
            file.add(rest, payload.to_vec());
        }
    }
    (!file.is_empty()).then_some(file)
}

/// Restore the newest valid generation: rank 0 loads (materializing any
/// delta chain) and broadcasts the coordinated file; every rank gets
/// back `(generation, its own local CkptFile)`. `None` (on all ranks,
/// consistently) when no valid checkpoint exists — including when the
/// newest checkpoint was written by a *different world size*: rank 0
/// validates the file's rank coverage against `comm.size()` before
/// broadcasting, so a 4-rank checkpoint in an 8-rank world makes every
/// rank resume fresh instead of silently splitting the world into
/// resumed and fresh halves.
pub fn restore_coordinated<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
) -> Option<(u64, CkptFile)> {
    let me = comm.rank();
    let world = comm.size();
    // Rank 0 encodes [present u8][generation u64][file bytes] so absence
    // broadcasts consistently instead of deadlocking non-root ranks.
    let msg = if me == 0 {
        match store.latest() {
            Some((generation, file)) => match covered_ranks(&file) {
                Some(n) if n == world => {
                    let mut m = vec![1u8];
                    m.extend_from_slice(&generation.to_le_bytes());
                    m.extend_from_slice(&file.to_bytes());
                    m
                }
                covered => {
                    eprintln!(
                        "warning: checkpoint generation {generation} covers {} rank(s) but this \
                         world has {world}; all ranks resume fresh",
                        covered.map_or_else(|| "an invalid set of".to_string(), |n| n.to_string())
                    );
                    vec![0u8]
                }
            },
            None => vec![0u8],
        }
    } else {
        Vec::new()
    };
    let msg = comm.broadcast_bytes(0, msg);
    let (generation, outer) = decode_restore_broadcast(me, &msg)?;
    let file = extract_rank_file(&outer, me)?;
    if me != 0 {
        // Rank 0's restore was counted inside `CkptStore::latest`.
        qmc_obs::counter_add("ckpt.restores", 1);
    }
    Some((generation, file))
}

/// Per-rank outcome of [`restore_coordinated_remapped`]. Rank-consistent:
/// either the whole world is `Fresh`, or every rank got the same
/// generation and is `Resumed` or `Joined`.
pub enum ElasticRestore {
    /// No usable checkpoint (none on disk, or the remap declined the
    /// mismatch): every rank starts from scratch.
    Fresh,
    /// This rank's state was rehydrated from the given generation.
    Resumed(u64, CkptFile),
    /// A checkpoint at the given generation exists for the world, but
    /// maps no old rank onto this one (the world re-grew): start fresh
    /// state *at that generation's boundary*, not at sweep zero.
    Joined(u64),
}

/// [`restore_coordinated`] with an elastic escape hatch: when the newest
/// checkpoint was written by a *different* world size, rank 0 asks
/// `remap(old_world)` for a per-new-rank mapping (`mapping[r] = Some(j)`
/// rehydrates new rank `r` from old rank `j`'s sections; `None` means
/// rank `r` joins fresh) instead of unconditionally degrading. The
/// remapped file is rebuilt on rank 0 and broadcast, so the store is
/// never rewritten — a second death re-derives the same mapping
/// deterministically. A matching world size behaves exactly like
/// [`restore_coordinated`]; `remap` returning `None` (or an out-of-range
/// mapping) reproduces its consistent whole-world degrade.
pub fn restore_coordinated_remapped<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
    remap: impl FnOnce(usize) -> Option<Vec<Option<usize>>>,
) -> ElasticRestore {
    let me = comm.rank();
    let world = comm.size();
    let msg = if me == 0 {
        match store.latest() {
            Some((generation, file)) => {
                let covered = covered_ranks(&file);
                let outer = match covered {
                    Some(n) if n == world => Some(file),
                    Some(n) => match remap(n).filter(|m| valid_mapping(m, n, world)) {
                        Some(mapping) => Some(remap_outer(&file, &mapping)),
                        None => {
                            eprintln!(
                                "warning: checkpoint generation {generation} covers {n} rank(s) \
                                 but this world has {world} and no remap applies; all ranks \
                                 resume fresh"
                            );
                            None
                        }
                    },
                    None => {
                        eprintln!(
                            "warning: checkpoint generation {generation} covers an invalid rank \
                             set; all ranks resume fresh"
                        );
                        None
                    }
                };
                match outer {
                    Some(outer) => {
                        let mut m = vec![1u8];
                        m.extend_from_slice(&generation.to_le_bytes());
                        m.extend_from_slice(&outer.to_bytes());
                        m
                    }
                    None => vec![0u8],
                }
            }
            None => vec![0u8],
        }
    } else {
        Vec::new()
    };
    let msg = comm.broadcast_bytes(0, msg);
    let Some((generation, outer)) = decode_restore_broadcast(me, &msg) else {
        return ElasticRestore::Fresh;
    };
    match extract_rank_file(&outer, me) {
        Some(file) => {
            if me != 0 {
                // Rank 0's restore was counted inside `CkptStore::latest`.
                qmc_obs::counter_add("ckpt.restores", 1);
            }
            ElasticRestore::Resumed(generation, file)
        }
        None => ElasticRestore::Joined(generation),
    }
}

/// A mapping is usable when it has one entry per new rank, every source
/// is a rank the old file actually covers, and no old rank is cloned
/// into two new ones (two ranks resuming identical RNG streams would
/// silently correlate the chains).
fn valid_mapping(mapping: &[Option<usize>], old_world: usize, new_world: usize) -> bool {
    let sources: Vec<usize> = mapping.iter().copied().flatten().collect();
    mapping.len() == new_world
        && sources.iter().all(|&j| j < old_world)
        && sources
            .iter()
            .enumerate()
            .all(|(i, j)| !sources[..i].contains(j))
}

/// Rebuild a coordinated file for the new world: new rank `r` takes old
/// rank `mapping[r]`'s sections (either layout), renamed in place.
fn remap_outer(old: &CkptFile, mapping: &[Option<usize>]) -> CkptFile {
    let mut out = CkptFile::new();
    for (r, src) in mapping.iter().enumerate() {
        let Some(j) = *src else { continue };
        if let Some(opaque) = old.get(&rank_section(j)) {
            out.add(&rank_section(r), opaque.to_vec());
        }
        let prefix = format!("rank{j}/");
        for (name, payload) in old.sections() {
            if let Some(rest) = name.strip_prefix(prefix.as_str()) {
                out.add(&format!("rank{r}/{rest}"), payload.to_vec());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_comm::run_threads;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(label: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qmc-ckpt-coord-{}-{label}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn roundtrip_world(dir: &Path, ranks: usize) -> Vec<(u64, Vec<u8>)> {
        let dir = dir.to_path_buf();
        run_threads(ranks, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            let mut local = CkptFile::new();
            local.add("payload", vec![comm.rank() as u8; 4 + comm.rank()]);
            write_coordinated(comm, &store, 3, &local);
            comm.barrier();
            let (g, restored) = restore_coordinated(comm, &store).expect("checkpoint exists");
            (g, restored.get("payload").unwrap().to_vec())
        })
    }

    #[test]
    fn four_ranks_round_trip_their_own_sections() {
        let dir = scratch("world");
        let got = roundtrip_world(&dir, 4);
        for (rank, (g, payload)) in got.into_iter().enumerate() {
            assert_eq!(g, 3);
            assert_eq!(payload, vec![rank as u8; 4 + rank]);
        }
    }

    #[test]
    fn serial_world_round_trips() {
        let dir = scratch("serial");
        let mut comm = qmc_comm::SerialComm::new();
        let store = CkptStore::new(&dir, 2).unwrap();
        let mut local = CkptFile::new();
        local.add("payload", vec![7; 3]);
        write_coordinated(&mut comm, &store, 1, &local).expect("rank 0 writes");
        let (g, restored) = restore_coordinated(&mut comm, &store).unwrap();
        assert_eq!(g, 1);
        assert_eq!(restored.get("payload"), Some(&[7u8; 3][..]));
    }

    #[test]
    fn missing_store_broadcasts_none_everywhere() {
        let dir = scratch("none");
        let got = run_threads(3, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            restore_coordinated(comm, &store).is_none()
        });
        assert!(got.into_iter().all(|absent| absent));
    }

    // ---- world-size mismatch (regression: low ranks used to resume
    // while ranks ≥ old-world-size silently started fresh) ----

    fn write_world(dir: &Path, ranks: usize) {
        let dir = dir.to_path_buf();
        run_threads(ranks, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            let mut local = CkptFile::new();
            local.add("payload", vec![comm.rank() as u8; 4]);
            write_coordinated(comm, &store, 1, &local);
        });
    }

    fn restore_world_outcomes(dir: &Path, ranks: usize) -> Vec<bool> {
        let dir = dir.to_path_buf();
        run_threads(ranks, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            restore_coordinated(comm, &store).is_some()
        })
    }

    #[test]
    fn growing_the_world_degrades_consistently_on_every_rank() {
        let dir = scratch("grow");
        write_world(&dir, 2);
        let resumed = restore_world_outcomes(&dir, 4);
        assert_eq!(
            resumed,
            vec![false; 4],
            "a 2-rank checkpoint in a 4-rank world must leave every rank fresh"
        );
    }

    #[test]
    fn shrinking_the_world_degrades_consistently_on_every_rank() {
        let dir = scratch("shrink");
        write_world(&dir, 4);
        let resumed = restore_world_outcomes(&dir, 2);
        assert_eq!(
            resumed,
            vec![false; 2],
            "a 4-rank checkpoint in a 2-rank world must leave every rank fresh"
        );
    }

    #[test]
    fn matching_world_still_resumes_after_mismatch_checks() {
        let dir = scratch("match");
        write_world(&dir, 3);
        let resumed = restore_world_outcomes(&dir, 3);
        assert_eq!(resumed, vec![true; 3]);
    }

    // ---- elastic remapped restore ----

    /// Outcome triple per rank: (resumed?, joined?, payload or marker).
    fn elastic_outcomes(
        dir: &Path,
        ranks: usize,
        mapping: Option<Vec<Option<usize>>>,
    ) -> Vec<(String, Vec<u8>)> {
        let dir = dir.to_path_buf();
        run_threads(ranks, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            let mapping = mapping.clone();
            match restore_coordinated_remapped(comm, &store, move |_old| mapping) {
                ElasticRestore::Fresh => ("fresh".to_string(), Vec::new()),
                ElasticRestore::Resumed(g, f) => {
                    (format!("resumed@{g}"), f.get("payload").unwrap().to_vec())
                }
                ElasticRestore::Joined(g) => (format!("joined@{g}"), Vec::new()),
            }
        })
    }

    #[test]
    fn shrink_remap_rehydrates_surviving_ranks() {
        let dir = scratch("remap-shrink");
        write_world(&dir, 4);
        // Drop old rank 2: new ranks 0,1,2 take old 0,1,3.
        let got = elastic_outcomes(&dir, 3, Some(vec![Some(0), Some(1), Some(3)]));
        assert_eq!(got[0], ("resumed@1".to_string(), vec![0u8; 4]));
        assert_eq!(got[1], ("resumed@1".to_string(), vec![1u8; 4]));
        assert_eq!(got[2], ("resumed@1".to_string(), vec![3u8; 4]));
    }

    #[test]
    fn grow_remap_joins_the_new_rank_at_the_boundary() {
        let dir = scratch("remap-grow");
        write_world(&dir, 2);
        let got = elastic_outcomes(&dir, 3, Some(vec![Some(0), Some(1), None]));
        assert_eq!(got[0], ("resumed@1".to_string(), vec![0u8; 4]));
        assert_eq!(got[1], ("resumed@1".to_string(), vec![1u8; 4]));
        assert_eq!(got[2], ("joined@1".to_string(), Vec::new()));
    }

    #[test]
    fn declined_or_invalid_remap_degrades_on_every_rank() {
        let dir = scratch("remap-decline");
        write_world(&dir, 4);
        for mapping in [
            None,                               // remap declines
            Some(vec![Some(9), Some(1), None]), // source out of range
            Some(vec![Some(0), Some(0), None]), // duplicate source
            Some(vec![Some(0)]),                // wrong arity
        ] {
            let got = elastic_outcomes(&dir, 3, mapping.clone());
            assert!(
                got.iter().all(|(kind, _)| kind == "fresh"),
                "mapping {mapping:?}: {got:?}"
            );
        }
    }

    #[test]
    fn matching_world_ignores_the_remap_hook() {
        let dir = scratch("remap-match");
        write_world(&dir, 2);
        // The hook would be invalid if consulted; a matching world must
        // never call it.
        let got = elastic_outcomes(&dir, 2, Some(vec![Some(9), Some(9)]));
        assert_eq!(got[0], ("resumed@1".to_string(), vec![0u8; 4]));
        assert_eq!(got[1], ("resumed@1".to_string(), vec![1u8; 4]));
    }

    #[test]
    fn remap_works_on_sectioned_layout_too() {
        let dir = scratch("remap-sectioned");
        {
            let dir = dir.clone();
            run_threads(3, move |comm| {
                let store = CkptStore::new(&dir, 2).unwrap();
                let me = comm.rank() as u8;
                write_coordinated_sections(comm, &store, 5, true, move |_| {
                    vec![("payload".to_string(), SectionPlan::Payload(vec![me; 4]))]
                });
            });
        }
        let got = elastic_outcomes(&dir, 2, Some(vec![Some(0), Some(2)]));
        assert_eq!(got[0], ("resumed@5".to_string(), vec![0u8; 4]));
        assert_eq!(got[1], ("resumed@5".to_string(), vec![2u8; 4]));
    }

    // ---- truncated broadcast (regression: a short message starting
    // with byte 1 used to panic in the generation-field slice) ----

    #[test]
    fn truncated_broadcast_degrades_instead_of_panicking() {
        // Shorter than the 1+8 byte header, first byte claims "present".
        assert!(decode_restore_broadcast(1, &[1, 2, 3]).is_none());
        assert!(decode_restore_broadcast(0, &[1]).is_none());
        // Header complete but the file bytes are garbage.
        let mut msg = vec![1u8];
        msg.extend_from_slice(&7u64.to_le_bytes());
        msg.extend_from_slice(b"not a checkpoint");
        assert!(decode_restore_broadcast(2, &msg).is_none());
        // Absent marker and empty message still mean "no checkpoint".
        assert!(decode_restore_broadcast(0, &[0]).is_none());
        assert!(decode_restore_broadcast(0, &[]).is_none());
        // And a well-formed message still decodes.
        let mut good = vec![1u8];
        good.extend_from_slice(&9u64.to_le_bytes());
        let mut f = CkptFile::new();
        f.add("rank0", vec![1, 2]);
        good.extend_from_slice(&f.to_bytes());
        let (g, file) = decode_restore_broadcast(0, &good).expect("valid broadcast decodes");
        assert_eq!(g, 9);
        assert_eq!(file.get("rank0"), Some(&[1u8, 2][..]));
    }

    // ---- sectioned (delta-capable) coordinated writes ----

    #[test]
    fn sectioned_writes_round_trip_and_go_delta_after_a_full() {
        let dir = scratch("sectioned");
        let got = run_threads(3, move |comm| {
            let store = CkptStore::new(&dir, 4).unwrap();
            let me = comm.rank() as u8;
            let build = |tag: u8| {
                move |delta: bool| {
                    vec![
                        (
                            "big".to_string(),
                            if delta {
                                SectionPlan::Clean
                            } else {
                                SectionPlan::Payload(vec![me; 128])
                            },
                        ),
                        ("small".to_string(), SectionPlan::Payload(vec![tag; 4])),
                    ]
                }
            };
            let (_, committed_full) = write_coordinated_sections(comm, &store, 1, true, build(1));
            let (_, committed_delta) = write_coordinated_sections(comm, &store, 2, false, build(2));
            comm.barrier();
            let (g, mine) = restore_coordinated(comm, &store).expect("checkpoint exists");
            (
                committed_full,
                committed_delta,
                g,
                mine.get("big").unwrap().to_vec(),
                mine.get("small").unwrap().to_vec(),
            )
        });
        for (rank, (full_ok, delta_ok, g, big, small)) in got.into_iter().enumerate() {
            assert!(full_ok, "rank {rank}: full write must commit");
            assert!(delta_ok, "rank {rank}: delta write must commit");
            assert_eq!(g, 2, "restore picks the delta generation");
            assert_eq!(big, vec![rank as u8; 128], "clean section via the base");
            assert_eq!(small, vec![2u8; 4], "dirty section from the delta");
        }
    }
}
