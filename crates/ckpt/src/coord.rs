//! Rank-0-coordinated checkpointing over any [`Communicator`].
//!
//! Each rank serializes its local [`CkptFile`]; rank 0 gathers all of
//! them and writes a single atomic file whose sections are named
//! `rank0`, `rank1`, …. On restore, rank 0 loads the newest valid
//! generation and broadcasts the whole file; every rank then extracts
//! its own section. Because the gather/broadcast ride the existing
//! deterministic collectives, a checkpoint round never perturbs the
//! fixed-seed trajectory — it draws no random numbers and exchanges no
//! user-tag messages.

use crate::{CkptFile, CkptStore};
use qmc_comm::Communicator;
use std::path::PathBuf;

/// Section name for a rank's payload inside the coordinated file.
fn rank_section(rank: usize) -> String {
    format!("rank{rank}")
}

/// Gather every rank's `local` file at rank 0 and write generation
/// `generation` atomically. Returns the written path on rank 0 (`None`
/// elsewhere, and `None` on rank 0 if the write failed — a checkpoint
/// write failure must not kill a healthy run, so it is reported, not
/// propagated).
pub fn write_coordinated<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
    generation: u64,
    local: &CkptFile,
) -> Option<PathBuf> {
    let bytes = local.to_bytes();
    let gathered = comm.gather_bytes(0, &bytes)?;
    let mut outer = CkptFile::new();
    for (rank, payload) in gathered.into_iter().enumerate() {
        outer.add(&rank_section(rank), payload);
    }
    match store.write(generation, &outer) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!(
                "warning: checkpoint generation {generation} not written ({e}); run continues"
            );
            None
        }
    }
}

/// Restore the newest valid generation: rank 0 loads and broadcasts the
/// coordinated file; every rank gets back `(generation, its own local
/// CkptFile)`. `None` (on all ranks, consistently) when no valid
/// checkpoint exists or the file lacks this world's rank sections.
pub fn restore_coordinated<C: Communicator>(
    comm: &mut C,
    store: &CkptStore,
) -> Option<(u64, CkptFile)> {
    let me = comm.rank();
    // Rank 0 encodes [present u8][generation u64][file bytes] so absence
    // broadcasts consistently instead of deadlocking non-root ranks.
    let msg = if me == 0 {
        match store.latest() {
            Some((generation, file)) => {
                let mut m = vec![1u8];
                m.extend_from_slice(&generation.to_le_bytes());
                m.extend_from_slice(&file.to_bytes());
                m
            }
            None => vec![0u8],
        }
    } else {
        Vec::new()
    };
    let msg = comm.broadcast_bytes(0, msg);
    if msg.first() != Some(&1) {
        return None;
    }
    let generation = u64::from_le_bytes(msg[1..9].try_into().expect("8-byte generation field"));
    let outer = match CkptFile::from_bytes(&msg[9..]) {
        Ok(f) => f,
        Err(e) => {
            // Rank 0 already validated; a broadcast that corrupts bytes
            // would be a comm bug, but degrade to "no checkpoint".
            eprintln!("warning: rank {me}: broadcast checkpoint unreadable ({e})");
            return None;
        }
    };
    let mine = outer.get(&rank_section(me))?;
    let file = CkptFile::from_bytes(mine).ok()?;
    if me != 0 {
        // Rank 0's restore was counted inside `CkptStore::latest`.
        qmc_obs::counter_add("ckpt.restores", 1);
    }
    Some((generation, file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_comm::run_threads;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(label: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qmc-ckpt-coord-{}-{label}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn roundtrip_world(dir: &Path, ranks: usize) -> Vec<(u64, Vec<u8>)> {
        let dir = dir.to_path_buf();
        run_threads(ranks, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            let mut local = CkptFile::new();
            local.add("payload", vec![comm.rank() as u8; 4 + comm.rank()]);
            write_coordinated(comm, &store, 3, &local);
            comm.barrier();
            let (g, restored) = restore_coordinated(comm, &store).expect("checkpoint exists");
            (g, restored.get("payload").unwrap().to_vec())
        })
    }

    #[test]
    fn four_ranks_round_trip_their_own_sections() {
        let dir = scratch("world");
        let got = roundtrip_world(&dir, 4);
        for (rank, (g, payload)) in got.into_iter().enumerate() {
            assert_eq!(g, 3);
            assert_eq!(payload, vec![rank as u8; 4 + rank]);
        }
    }

    #[test]
    fn serial_world_round_trips() {
        let dir = scratch("serial");
        let mut comm = qmc_comm::SerialComm::new();
        let store = CkptStore::new(&dir, 2).unwrap();
        let mut local = CkptFile::new();
        local.add("payload", vec![7; 3]);
        write_coordinated(&mut comm, &store, 1, &local).expect("rank 0 writes");
        let (g, restored) = restore_coordinated(&mut comm, &store).unwrap();
        assert_eq!(g, 1);
        assert_eq!(restored.get("payload"), Some(&[7u8; 3][..]));
    }

    #[test]
    fn missing_store_broadcasts_none_everywhere() {
        let dir = scratch("none");
        let got = run_threads(3, move |comm| {
            let store = CkptStore::new(&dir, 2).unwrap();
            restore_coordinated(comm, &store).is_none()
        });
        assert!(got.into_iter().all(|absent| absent));
    }
}
