//! Length-prefixed little-endian primitives for the checkpoint wire
//! format. [`Encoder`] is infallible (it grows a `Vec<u8>`); every
//! [`Decoder`] read is bounds-checked and returns [`CkptError`] instead
//! of panicking, because a checkpoint file is external input — it may be
//! torn, truncated, or from a different run entirely.

use crate::Checkpoint;
use std::fmt;

/// Everything that can go wrong reading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Ran out of bytes while reading `what`.
    Truncated { what: &'static str },
    /// File does not start with the checkpoint magic.
    BadMagic,
    /// File magic matched but the schema string is not ours.
    BadSchema { found: String },
    /// A section's payload does not match its recorded CRC32.
    BadCrc { section: String },
    /// A required section is absent from the file.
    MissingSection { name: String },
    /// A state payload's kind tag does not match the target value.
    KindMismatch { expected: String, found: String },
    /// Structurally invalid content (size mismatch, bad enum tag, …).
    Corrupt { detail: String },
    /// Filesystem error surfaced while reading.
    Io { detail: String },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { what } => write!(f, "checkpoint truncated while reading {what}"),
            CkptError::BadMagic => write!(f, "not a qmc checkpoint (bad magic)"),
            CkptError::BadSchema { found } => {
                write!(f, "unsupported checkpoint schema {found:?}")
            }
            CkptError::BadCrc { section } => {
                write!(f, "checkpoint section {section:?} failed CRC32")
            }
            CkptError::MissingSection { name } => {
                write!(f, "checkpoint is missing section {name:?}")
            }
            CkptError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            CkptError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            CkptError::Io { detail } => write!(f, "checkpoint i/o error: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl CkptError {
    /// Shorthand for a [`CkptError::Corrupt`] with a formatted detail.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        CkptError::Corrupt {
            detail: detail.into(),
        }
    }
}

/// Append-only binary writer (little-endian, length-prefixed slices).
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finished byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` by bit pattern (NaN payloads and signed zeros
    /// survive the round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    /// Write a length-prefixed `i64` slice.
    pub fn i64s(&mut self, v: &[i64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.i64(x);
        }
    }

    /// Write a length-prefixed `f64` slice (bit patterns).
    pub fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    /// Write a length-prefixed `bool` slice, one byte per element.
    pub fn bools(&mut self, v: &[bool]) {
        self.u64(v.len() as u64);
        self.buf.extend(v.iter().map(|&b| b as u8));
    }

    /// Write a nested [`Checkpoint`] state: kind tag + length-prefixed
    /// body, so the reader can verify type and skip on error.
    pub fn state(&mut self, s: &impl Checkpoint) {
        self.str(s.kind());
        let mut body = Encoder::new();
        s.save(&mut body);
        self.bytes(&body.buf);
    }
}

/// Bounds-checked reader over an encoded byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reader over `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte has been consumed.
    pub fn expect_empty(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?
                .try_into()
                .expect("take returned 4 bytes"),
        ))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?
                .try_into()
                .expect("take returned 8 bytes"),
        ))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(
            self.take(8, "i64")?
                .try_into()
                .expect("take returned 8 bytes"),
        ))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::corrupt(format!("invalid bool byte {b}"))),
        }
    }

    fn len_prefix(&mut self, what: &'static str) -> Result<usize, CkptError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CkptError::Truncated { what });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.len_prefix("bytes")?;
        self.take(n, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CkptError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CkptError::corrupt("string is not valid UTF-8"))
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.u64()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining() as u64) {
            return Err(CkptError::Truncated { what: "u64 slice" });
        }
        (0..n).map(|_| self.u64()).collect()
    }

    /// Read a length-prefixed `i64` slice.
    pub fn i64s(&mut self) -> Result<Vec<i64>, CkptError> {
        let n = self.u64()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining() as u64) {
            return Err(CkptError::Truncated { what: "i64 slice" });
        }
        (0..n).map(|_| self.i64()).collect()
    }

    /// Read a length-prefixed `f64` slice (bit patterns).
    pub fn f64s(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.u64()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining() as u64) {
            return Err(CkptError::Truncated { what: "f64 slice" });
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed `bool` slice.
    pub fn bools(&mut self) -> Result<Vec<bool>, CkptError> {
        let n = self.len_prefix("bool slice")?;
        self.take(n, "bool slice")?
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(CkptError::corrupt(format!("invalid bool byte {b}"))),
            })
            .collect()
    }

    /// Read a nested state written by [`Encoder::state`]: verifies the
    /// kind tag against `target.kind()`, then hands `target.load` a
    /// sub-decoder that must consume the body exactly.
    pub fn load_state(&mut self, target: &mut impl Checkpoint) -> Result<(), CkptError> {
        let found = self.str()?;
        if found != target.kind() {
            return Err(CkptError::KindMismatch {
                expected: target.kind().to_string(),
                found,
            });
        }
        let body = self.bytes()?;
        let mut sub = Decoder::new(body);
        target.load(&mut sub)?;
        sub.expect_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(-0.0);
        e.bool(true);
        e.bytes(b"abc");
        e.str("résumé");
        e.u64s(&[1, 2, 3]);
        e.i64s(&[-1, 0, 1]);
        e.f64s(&[f64::INFINITY]);
        e.bools(&[true, false]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"abc");
        assert_eq!(d.str().unwrap(), "résumé");
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.i64s().unwrap(), vec![-1, 0, 1]);
        assert_eq!(d.f64s().unwrap(), vec![f64::INFINITY]);
        assert_eq!(d.bools().unwrap(), vec![true, false]);
        d.expect_empty().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.u64s(&[1, 2, 3]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.u64s().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn huge_length_prefix_is_rejected() {
        // A corrupted 8-byte length must not trigger a huge allocation.
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Decoder::new(&bytes).bytes().is_err());
        assert!(Decoder::new(&bytes).f64s().is_err());
    }
}
