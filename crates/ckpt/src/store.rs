//! Atomic, generation-numbered checkpoint storage.
//!
//! Writes go to a hidden temp file in the same directory followed by a
//! `rename`, so a crash never leaves a half-written file under the final
//! name. Old generations are pruned down to the newest K after every
//! successful write. Readers walk generations newest-first and skip any
//! file that fails to parse (torn, CRC-bad, wrong schema) — the run then
//! resumes from the most recent generation that survived intact.

use crate::file::CkptFile;
use crate::wire::CkptError;
use std::fs;
use std::path::{Path, PathBuf};

const EXT: &str = "qckpt";

/// A directory of `ckpt-<generation>.qckpt` files, retaining the last K.
pub struct CkptStore {
    dir: PathBuf,
    retain: usize,
}

impl CkptStore {
    /// Open (creating if needed) a store in `dir`, keeping at most
    /// `retain` generations (minimum 1).
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            retain: retain.max(1),
        };
        // A crash between `fs::write(tmp)` and `rename` leaves an orphan
        // temp file behind; opening the store is the natural point to
        // sweep them (nothing else can be writing yet).
        store.gc_temp_files();
        Ok(store)
    }

    /// Remove orphaned `.ckpt-*.qckpt.tmp` files left by a writer that
    /// crashed between the temp write and the atomic rename.
    ///
    /// Best-effort (unlink errors are ignored) and safe by construction:
    /// temp files are only ever live *during* a `write` call, and a
    /// store is single-writer, so anything matching the pattern when we
    /// look is garbage. Returns how many files were removed.
    pub fn gc_temp_files(&self) -> usize {
        let mut removed = 0;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with(".ckpt-")
                    && name.ends_with(&format!(".{EXT}.tmp"))
                    && fs::remove_file(entry.path()).is_ok()
                {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:010}.{EXT}"))
    }

    /// Atomically write `file` as generation `generation`, then prune
    /// old generations beyond the retain limit. Records the serialized
    /// size under the `ckpt.write_bytes` observability counter.
    pub fn write(&self, generation: u64, file: &CkptFile) -> std::io::Result<PathBuf> {
        let bytes = file.to_bytes();
        let final_path = self.path_for(generation);
        let tmp_path = self.dir.join(format!(".ckpt-{generation:010}.{EXT}.tmp"));
        fs::write(&tmp_path, &bytes)?;
        fs::rename(&tmp_path, &final_path)?;
        qmc_obs::counter_add("ckpt.write_bytes", bytes.len() as u64);
        self.prune();
        Ok(final_path)
    }

    /// Delete the oldest generations until at most `retain` remain.
    /// Best-effort: unlink errors are ignored (a stale extra file is
    /// harmless; readers pick the newest valid one regardless).
    fn prune(&self) {
        let gens = self.generations();
        if gens.len() > self.retain {
            for &g in &gens[..gens.len() - self.retain] {
                let _ = fs::remove_file(self.path_for(g));
            }
        }
    }

    /// All on-disk generation numbers, sorted ascending. Files that do
    /// not match the `ckpt-<gen>.qckpt` pattern are ignored.
    pub fn generations(&self) -> Vec<u64> {
        let mut gens = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(g) = name
                    .strip_prefix("ckpt-")
                    .and_then(|r| r.strip_suffix(&format!(".{EXT}")))
                    .and_then(|g| g.parse::<u64>().ok())
                {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        gens
    }

    /// Load and fully validate a specific generation.
    pub fn load(&self, generation: u64) -> Result<CkptFile, CkptError> {
        let bytes = fs::read(self.path_for(generation)).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", self.path_for(generation).display()),
        })?;
        CkptFile::from_bytes(&bytes)
    }

    /// Newest generation that parses and passes every CRC, walking
    /// backwards past torn or corrupt files. Bumps the `ckpt.restores`
    /// observability counter on success. `None` when no valid
    /// checkpoint exists.
    pub fn latest(&self) -> Option<(u64, CkptFile)> {
        for &g in self.generations().iter().rev() {
            if let Ok(file) = self.load(g) {
                qmc_obs::counter_add("ckpt.restores", 1);
                return Some((g, file));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch dir per test (no external tempdir crate).
    fn scratch(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qmc-ckpt-test-{}-{label}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn file_with(tag: u8) -> CkptFile {
        let mut f = CkptFile::new();
        f.add("data", vec![tag; 16]);
        f
    }

    #[test]
    fn write_load_round_trips() {
        let store = CkptStore::new(scratch("rt"), 3).unwrap();
        store.write(7, &file_with(7)).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 7);
        assert_eq!(f.get("data"), Some(&[7u8; 16][..]));
    }

    #[test]
    fn retains_only_last_k() {
        let store = CkptStore::new(scratch("prune"), 2).unwrap();
        for g in 1..=5 {
            store.write(g, &file_with(g as u8)).unwrap();
        }
        assert_eq!(store.generations(), vec![4, 5]);
    }

    #[test]
    fn torn_newest_falls_back_to_previous_generation() {
        let store = CkptStore::new(scratch("torn"), 4).unwrap();
        store.write(1, &file_with(1)).unwrap();
        let p2 = store.write(2, &file_with(2)).unwrap();
        // Tear the newest file: keep only the first half of its bytes.
        let bytes = fs::read(&p2).unwrap();
        fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1, "must skip the torn generation");
        assert_eq!(f.get("data"), Some(&[1u8; 16][..]));
    }

    #[test]
    fn crc_bad_newest_falls_back() {
        let store = CkptStore::new(scratch("crc"), 4).unwrap();
        store.write(1, &file_with(1)).unwrap();
        let p2 = store.write(2, &file_with(2)).unwrap();
        let mut bytes = fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p2, &bytes).unwrap();
        let (g, _) = store.latest().unwrap();
        assert_eq!(g, 1);
    }

    #[test]
    fn crash_between_tmp_write_and_rename_is_garbage_collected() {
        let dir = scratch("gc");
        // Simulate the crash: a finished generation, then a temp file
        // whose writer died before the rename.
        {
            let store = CkptStore::new(&dir, 3).unwrap();
            store.write(1, &file_with(1)).unwrap();
            fs::write(
                dir.join(format!(".ckpt-{:010}.{EXT}.tmp", 2)),
                b"half-written",
            )
            .unwrap();
        }
        let orphan = dir.join(format!(".ckpt-{:010}.{EXT}.tmp", 2));
        assert!(orphan.exists(), "crash simulation precondition");

        // Re-opening the store sweeps the orphan and leaves real
        // checkpoints alone.
        let store = CkptStore::new(&dir, 3).unwrap();
        assert!(!orphan.exists(), "orphan temp file must be removed");
        assert_eq!(store.generations(), vec![1]);
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1);
        assert_eq!(f.get("data"), Some(&[1u8; 16][..]));
    }

    #[test]
    fn gc_reports_count_and_ignores_unrelated_files() {
        let dir = scratch("gc-count");
        let store = CkptStore::new(&dir, 3).unwrap();
        fs::write(dir.join(".ckpt-0000000001.qckpt.tmp"), b"x").unwrap();
        fs::write(dir.join(".ckpt-0000000002.qckpt.tmp"), b"y").unwrap();
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        assert_eq!(store.gc_temp_files(), 2);
        assert!(dir.join("notes.txt").exists());
        assert_eq!(store.gc_temp_files(), 0, "second sweep finds nothing");
    }

    #[test]
    fn empty_store_has_no_latest() {
        let store = CkptStore::new(scratch("empty"), 2).unwrap();
        assert!(store.latest().is_none());
        assert!(store.generations().is_empty());
    }
}
