//! Atomic, generation-numbered checkpoint storage with delta chains.
//!
//! Writes go to a hidden temp file in the same directory followed by a
//! `rename`, so a crash never leaves a half-written file under the final
//! name. Old generations are pruned down to the newest K after every
//! successful write — but never a base generation that a retained delta
//! still references. Readers walk generations newest-first, materialize
//! delta chains transparently, and skip any generation whose chain fails
//! to parse (torn, CRC-bad, wrong schema) — the run then resumes from
//! the most recent generation that survived intact.
//!
//! Delta writes resolve against the *base cache*: the section index
//! (name, CRC32, length) of the last generation this store successfully
//! wrote or restored. [`CkptStore::delta_base`] exposes the cached
//! generation so callers can decide full-vs-delta *before* serializing —
//! a clean section in a delta plan is never serialized at all, which is
//! the entire point of incremental checkpointing.

use crate::crc32::crc32;
use crate::delta::{peek_base, RawCkpt, SectionData, SectionPlan};
use crate::file::CkptFile;
use crate::wire::CkptError;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const EXT: &str = "qckpt";

/// Directories with a write currently in flight (between the temp-file
/// write and the atomic rename), shared by every store in the process.
/// All communicator backends in this workspace are in-process threads,
/// so this registry sees every writer that could race a store open —
/// `gc_temp_files` consults it before sweeping, closing the window where
/// one rank's store open deleted another rank's live temp file.
static ACTIVE_WRITERS: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());

/// Map one namespace segment onto a safe directory name: keep
/// `[A-Za-z0-9._-]`, replace the rest with `_`, and turn anything that
/// could still walk the tree (empty, `.`, `..`, or a segment that lost
/// all its identity to `_`) into a CRC-derived token that is stable for
/// a given input but cannot escape the root.
pub(crate) fn sanitize_segment(segment: &str) -> String {
    let mapped: String = segment
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let degenerate =
        mapped.is_empty() || mapped.chars().all(|c| matches!(c, '.' | '_')) || mapped.len() > 128;
    if degenerate {
        format!("ns-{:08x}", crate::crc32::crc32(segment.as_bytes()))
    } else {
        mapped
    }
}

/// The canonical on-disk key of a `/`-separated namespace: each segment
/// sanitized exactly as [`CkptStore::open_namespace`] would, re-joined
/// with `/`. Two names with equal keys share a checkpoint directory —
/// admission layers use this to reject namespace collisions *before*
/// two live jobs can resume each other's generations.
pub fn namespace_key(name: &str) -> String {
    name.split('/')
        .map(sanitize_segment)
        .collect::<Vec<_>>()
        .join("/")
}

/// Normalized directory key for the writer registry (two stores may name
/// the same directory through different paths).
fn registry_key(dir: &Path) -> PathBuf {
    fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf())
}

/// RAII registration of an in-flight write on `dir`.
struct WriterGuard {
    key: PathBuf,
}

impl WriterGuard {
    fn register(dir: &Path) -> Self {
        let key = registry_key(dir);
        ACTIVE_WRITERS
            .lock()
            .expect("checkpoint writer registry poisoned")
            .push(key.clone());
        Self { key }
    }
}

impl Drop for WriterGuard {
    fn drop(&mut self) {
        let mut reg = ACTIVE_WRITERS
            .lock()
            .expect("checkpoint writer registry poisoned");
        if let Some(i) = reg.iter().position(|k| k == &self.key) {
            reg.swap_remove(i);
        }
    }
}

/// Section index of the last successfully written (or restored)
/// generation: what a delta write's base references resolve against.
struct BaseCache {
    generation: u64,
    /// `(name, crc32, len)` per section of the materialized generation.
    index: Vec<(String, u32, u32)>,
}

/// A directory of `ckpt-<generation>.qckpt` files, retaining the last K
/// (plus any older base a retained delta still needs).
pub struct CkptStore {
    dir: PathBuf,
    retain: usize,
    base: Mutex<Option<BaseCache>>,
    written: AtomicU64,
}

impl CkptStore {
    /// Open (creating if needed) a store in `dir`, keeping at most
    /// `retain` generations (minimum 1).
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            retain: retain.max(1),
            base: Mutex::new(None),
            written: AtomicU64::new(0),
        };
        // A crash between `fs::write(tmp)` and `rename` leaves an orphan
        // temp file behind; opening the store is the natural point to
        // sweep them. The sweep itself skips directories with a write in
        // flight (see `gc_temp_files`) — in coordinated runs every rank
        // opens the store while only rank 0 writes, and an unguarded
        // sweep here used to delete rank 0's live temp file mid-write.
        store.gc_temp_files();
        Ok(store)
    }

    /// Open (creating if needed) a store in a named subdirectory of
    /// `root` — the per-job namespacing the job server uses, where every
    /// job checkpoints under `<root>/<tenant>/<job>` without colliding.
    ///
    /// Each `/`-separated segment of `name` is sanitized to
    /// `[A-Za-z0-9._-]` (anything else maps to `_`), and path-escape
    /// segments (empty, `.`, `..`, or all-underscores after mapping) are
    /// replaced with a hash-derived token, so a hostile job name cannot
    /// climb out of `root`.
    pub fn open_namespace(
        root: impl Into<PathBuf>,
        name: &str,
        retain: usize,
    ) -> std::io::Result<Self> {
        let mut dir = root.into();
        for segment in name.split('/') {
            dir.push(sanitize_segment(segment));
        }
        Self::new(dir, retain)
    }

    /// Remove orphaned `.ckpt-*.qckpt.tmp` files left by a writer that
    /// crashed between the temp write and the atomic rename.
    ///
    /// Best-effort (unlink errors are ignored). A temp file is only live
    /// *during* a write, and every writer in the process registers
    /// itself for the duration of that window — so the sweep runs under
    /// the registry lock and skips the directory entirely while a write
    /// is in flight, rather than assuming single-writer. Returns how
    /// many files were removed.
    pub fn gc_temp_files(&self) -> usize {
        let reg = ACTIVE_WRITERS
            .lock()
            .expect("checkpoint writer registry poisoned");
        let me = registry_key(&self.dir);
        if reg.iter().any(|k| k == &me) {
            return 0;
        }
        let mut removed = 0;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with(".ckpt-")
                    && name.ends_with(&format!(".{EXT}.tmp"))
                    && fs::remove_file(entry.path()).is_ok()
                {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total serialized bytes this store instance has written (full and
    /// delta files alike); the `ckpt_delta_bytes` bench guard reads this.
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:010}.{EXT}"))
    }

    /// Temp-write + atomic rename, registered with the writer registry
    /// for the duration so a concurrent store open cannot sweep the live
    /// temp file.
    fn write_bytes_atomic(&self, generation: u64, bytes: &[u8]) -> std::io::Result<PathBuf> {
        let final_path = self.path_for(generation);
        let tmp_path = self.dir.join(format!(".ckpt-{generation:010}.{EXT}.tmp"));
        let _writing = WriterGuard::register(&self.dir);
        fs::write(&tmp_path, bytes)?;
        fs::rename(&tmp_path, &final_path)?;
        qmc_obs::counter_add("ckpt.write_bytes", bytes.len() as u64);
        self.written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(final_path)
    }

    /// Replace the base cache with `file`'s section index.
    fn seed_cache(&self, generation: u64, file: &CkptFile) {
        let index = file
            .sections()
            .map(|(n, p)| (n.to_string(), crc32(p), p.len() as u32))
            .collect();
        *self.base.lock().expect("checkpoint base cache poisoned") =
            Some(BaseCache { generation, index });
    }

    /// Atomically write `file` as a full generation `generation`, then
    /// prune old generations beyond the retain limit. Records the
    /// serialized size under the `ckpt.write_bytes` observability
    /// counter and makes this generation the delta base for subsequent
    /// [`CkptStore::write_delta`] calls.
    pub fn write(&self, generation: u64, file: &CkptFile) -> std::io::Result<PathBuf> {
        let bytes = file.to_bytes();
        let path = self.write_bytes_atomic(generation, &bytes)?;
        self.seed_cache(generation, file);
        self.prune();
        Ok(path)
    }

    /// Generation a delta write would reference, if the store has one:
    /// the last generation this instance successfully wrote or restored.
    /// Callers consult this *before* serializing so clean sections can
    /// be planned as [`SectionPlan::Clean`] and never serialized.
    pub fn delta_base(&self) -> Option<u64> {
        self.base
            .lock()
            .expect("checkpoint base cache poisoned")
            .as_ref()
            .map(|c| c.generation)
    }

    /// Atomically write a delta generation: `Clean` plan entries become
    /// 8-byte references into the cached base generation, `Payload`
    /// entries are stored verbatim. Errors if a clean section has no
    /// counterpart in the base (callers pair this with
    /// [`CkptStore::delta_base`]); degrades to a plain full write when
    /// the plan has no clean entries. On success the new generation
    /// becomes the delta base for the next write.
    pub fn write_delta(
        &self,
        generation: u64,
        plan: Vec<(String, SectionPlan)>,
    ) -> std::io::Result<PathBuf> {
        if !plan.iter().any(|(_, p)| matches!(p, SectionPlan::Clean)) {
            // Nothing to reference — a "delta" carrying every payload is
            // just a full snapshot; write it as one.
            let mut file = CkptFile::new();
            for (name, p) in plan {
                if let SectionPlan::Payload(b) = p {
                    file.add(&name, b);
                }
            }
            return self.write(generation, &file);
        }
        let (base_generation, index, sections) = {
            let cache = self.base.lock().expect("checkpoint base cache poisoned");
            let Some(cache) = cache.as_ref() else {
                return Err(std::io::Error::other(
                    "delta write with no base generation (no prior successful write)",
                ));
            };
            if cache.generation >= generation {
                return Err(std::io::Error::other(format!(
                    "delta generation {generation} must be newer than its base {}",
                    cache.generation
                )));
            }
            let mut index = Vec::with_capacity(plan.len());
            let mut sections = Vec::with_capacity(plan.len());
            for (name, p) in plan {
                match p {
                    SectionPlan::Payload(b) => {
                        index.push((name.clone(), crc32(&b), b.len() as u32));
                        sections.push((name, SectionData::Payload(b)));
                    }
                    SectionPlan::Clean => {
                        let Some((_, crc, len)) = cache.index.iter().find(|(n, _, _)| *n == name)
                        else {
                            return Err(std::io::Error::other(format!(
                                "clean section {name:?} has no counterpart in base generation {}",
                                cache.generation
                            )));
                        };
                        index.push((name.clone(), *crc, *len));
                        sections.push((
                            name,
                            SectionData::BaseRef {
                                crc: *crc,
                                len: *len,
                            },
                        ));
                    }
                }
            }
            (cache.generation, index, sections)
        };
        let raw = RawCkpt {
            base: Some(base_generation),
            sections,
        };
        let path = self.write_bytes_atomic(generation, &raw.to_bytes())?;
        *self.base.lock().expect("checkpoint base cache poisoned") =
            Some(BaseCache { generation, index });
        self.prune();
        Ok(path)
    }

    /// Write a planned generation: a delta against the cached base when
    /// `delta` is set, else a plain full snapshot. `delta` must come
    /// from a [`CkptStore::delta_base`] check made before the plan was
    /// built, so clean sections were never serialized.
    pub fn write_plan(
        &self,
        generation: u64,
        plan: Vec<(String, SectionPlan)>,
        delta: bool,
    ) -> std::io::Result<PathBuf> {
        if delta {
            self.write_delta(generation, plan)
        } else {
            let mut file = CkptFile::new();
            for (name, p) in plan {
                match p {
                    SectionPlan::Payload(b) => file.add(&name, b),
                    SectionPlan::Clean => {
                        return Err(std::io::Error::other(format!(
                            "clean section {name:?} in a full write plan"
                        )))
                    }
                }
            }
            self.write(generation, &file)
        }
    }

    /// Delete the oldest generations until at most `retain` remain —
    /// except that a base generation referenced (transitively) by any
    /// retained delta is kept alive regardless of age, because dropping
    /// it would orphan the whole chain. Best-effort: unlink errors are
    /// ignored (a stale extra file is harmless; readers pick the newest
    /// valid one regardless).
    fn prune(&self) {
        let gens = self.generations();
        if gens.len() <= self.retain {
            return;
        }
        let mut keep: Vec<u64> = gens[gens.len() - self.retain..].to_vec();
        let mut frontier = keep.clone();
        while let Some(g) = frontier.pop() {
            if let Some(b) = self.read_base(g) {
                if gens.contains(&b) && !keep.contains(&b) {
                    keep.push(b);
                    frontier.push(b);
                }
            }
        }
        for &g in &gens {
            if !keep.contains(&g) {
                let _ = fs::remove_file(self.path_for(g));
            }
        }
    }

    /// Base generation `generation`'s file references, from a cheap
    /// header peek (no CRC validation; `None` for full/v1/unreadable).
    fn read_base(&self, generation: u64) -> Option<u64> {
        peek_base(&fs::read(self.path_for(generation)).ok()?)
    }

    /// All on-disk generation numbers, sorted ascending. Files that do
    /// not match the `ckpt-<gen>.qckpt` pattern are ignored.
    pub fn generations(&self) -> Vec<u64> {
        let mut gens = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(g) = name
                    .strip_prefix("ckpt-")
                    .and_then(|r| r.strip_suffix(&format!(".{EXT}")))
                    .and_then(|g| g.parse::<u64>().ok())
                {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        gens
    }

    /// Load, fully validate, and materialize a specific generation,
    /// resolving its delta chain (base of base of …) transparently.
    /// Every file in the chain is CRC-validated and every base reference
    /// re-verified against the materialized base payloads.
    pub fn load(&self, generation: u64) -> Result<CkptFile, CkptError> {
        let path = self.path_for(generation);
        let bytes = fs::read(&path).map_err(|e| CkptError::Io {
            detail: format!("{}: {e}", path.display()),
        })?;
        let raw = RawCkpt::from_bytes(&bytes)?;
        match raw.base {
            None => raw.resolve(None),
            Some(b) if b >= generation => Err(CkptError::corrupt(format!(
                "delta generation {generation} references a non-older base {b}"
            ))),
            Some(b) => {
                let base = self.load(b)?;
                raw.resolve(Some(&base))
            }
        }
    }

    /// Newest generation whose whole chain parses and passes every CRC,
    /// walking backwards past torn or corrupt generations (a torn delta
    /// falls back to its base's generation if that one is intact on its
    /// own or via an earlier chain). Bumps the `ckpt.restores`
    /// observability counter on success and seeds the delta-base cache,
    /// so a resumed run's next checkpoint can be written as a delta.
    /// `None` when no valid checkpoint exists.
    pub fn latest(&self) -> Option<(u64, CkptFile)> {
        for &g in self.generations().iter().rev() {
            if let Ok(file) = self.load(g) {
                qmc_obs::counter_add("ckpt.restores", 1);
                self.seed_cache(g, &file);
                return Some((g, file));
            }
        }
        None
    }

    /// Collapse the newest valid generation's delta chain into a fresh
    /// standalone full snapshot (ROADMAP: checkpoint compaction): the
    /// chain is materialized, rewritten atomically under the same
    /// generation number, and bases it no longer needs are pruned.
    /// Returns the compacted generation, `None` when the store is empty
    /// (or holds only corrupt files). A crash mid-compaction leaves the
    /// original chain untouched — the rewrite rides the same temp+rename
    /// discipline as every other write.
    pub fn compact(&self) -> std::io::Result<Option<u64>> {
        for &g in self.generations().iter().rev() {
            let Ok(file) = self.load(g) else { continue };
            if self.read_base(g).is_some() {
                self.write_bytes_atomic(g, &file.to_bytes())?;
            }
            self.seed_cache(g, &file);
            self.prune();
            return Ok(Some(g));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique scratch dir per test (no external tempdir crate).
    fn scratch(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("qmc-ckpt-test-{}-{label}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn file_with(tag: u8) -> CkptFile {
        let mut f = CkptFile::new();
        f.add("data", vec![tag; 16]);
        f
    }

    /// A two-section plan: `big` clean (delta candidate), `small` dirty.
    fn delta_plan(tag: u8) -> Vec<(String, SectionPlan)> {
        vec![
            ("big".to_string(), SectionPlan::Clean),
            ("small".to_string(), SectionPlan::Payload(vec![tag; 4])),
        ]
    }

    fn full_file(tag: u8) -> CkptFile {
        let mut f = CkptFile::new();
        f.add("big", vec![0xAB; 256]);
        f.add("small", vec![tag; 4]);
        f
    }

    #[test]
    fn namespaced_stores_do_not_collide() {
        let root = scratch("ns");
        let a = CkptStore::open_namespace(&root, "tenant-a/job1", 3).unwrap();
        let b = CkptStore::open_namespace(&root, "tenant-b/job1", 3).unwrap();
        a.write(1, &file_with(1)).unwrap();
        b.write(9, &file_with(9)).unwrap();
        assert_eq!(a.latest().unwrap().0, 1);
        assert_eq!(b.latest().unwrap().0, 9);
        // Reopening the same namespace sees the same generations.
        let a2 = CkptStore::open_namespace(&root, "tenant-a/job1", 3).unwrap();
        assert_eq!(a2.latest().unwrap().0, 1);
    }

    #[test]
    fn hostile_namespace_names_cannot_escape_root() {
        let root = scratch("ns-hostile");
        fs::create_dir_all(&root).unwrap();
        let canon_root = fs::canonicalize(&root).unwrap();
        for name in ["../../etc/job", "..", ".", "a/../../b", "", "😀/\0x"] {
            let store = CkptStore::open_namespace(&root, name, 2).unwrap();
            store.write(1, &file_with(1)).unwrap();
            let dir = fs::canonicalize(store.dir()).unwrap();
            assert!(
                dir.starts_with(&canon_root),
                "name {name:?} escaped to {dir:?}"
            );
        }
    }

    #[test]
    fn sanitize_segment_keeps_identity_and_blocks_walks() {
        assert_eq!(sanitize_segment("tenant-a"), "tenant-a");
        assert_eq!(sanitize_segment("job 7!"), "job_7_");
        assert!(sanitize_segment("..").starts_with("ns-"));
        assert!(sanitize_segment("").starts_with("ns-"));
        // Distinct hostile inputs land on distinct tokens.
        assert_ne!(sanitize_segment(".."), sanitize_segment("..."));
        // Distinct names that sanitize to the same directory share a
        // namespace key — the collision signal admission layers need.
        assert_eq!(namespace_key("t/job a"), namespace_key("t/job_a"));
        assert_ne!(namespace_key("t/job-a"), namespace_key("t/job_a"));
    }

    #[test]
    fn write_load_round_trips() {
        let store = CkptStore::new(scratch("rt"), 3).unwrap();
        store.write(7, &file_with(7)).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 7);
        assert_eq!(f.get("data"), Some(&[7u8; 16][..]));
    }

    #[test]
    fn retains_only_last_k() {
        let store = CkptStore::new(scratch("prune"), 2).unwrap();
        for g in 1..=5 {
            store.write(g, &file_with(g as u8)).unwrap();
        }
        assert_eq!(store.generations(), vec![4, 5]);
    }

    #[test]
    fn torn_newest_falls_back_to_previous_generation() {
        let store = CkptStore::new(scratch("torn"), 4).unwrap();
        store.write(1, &file_with(1)).unwrap();
        let p2 = store.write(2, &file_with(2)).unwrap();
        // Tear the newest file: keep only the first half of its bytes.
        let bytes = fs::read(&p2).unwrap();
        fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1, "must skip the torn generation");
        assert_eq!(f.get("data"), Some(&[1u8; 16][..]));
    }

    #[test]
    fn crc_bad_newest_falls_back() {
        let store = CkptStore::new(scratch("crc"), 4).unwrap();
        store.write(1, &file_with(1)).unwrap();
        let p2 = store.write(2, &file_with(2)).unwrap();
        let mut bytes = fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&p2, &bytes).unwrap();
        let (g, _) = store.latest().unwrap();
        assert_eq!(g, 1);
    }

    #[test]
    fn crash_between_tmp_write_and_rename_is_garbage_collected() {
        let dir = scratch("gc");
        // Simulate the crash: a finished generation, then a temp file
        // whose writer died before the rename.
        {
            let store = CkptStore::new(&dir, 3).unwrap();
            store.write(1, &file_with(1)).unwrap();
            fs::write(
                dir.join(format!(".ckpt-{:010}.{EXT}.tmp", 2)),
                b"half-written",
            )
            .unwrap();
        }
        let orphan = dir.join(format!(".ckpt-{:010}.{EXT}.tmp", 2));
        assert!(orphan.exists(), "crash simulation precondition");

        // Re-opening the store sweeps the orphan and leaves real
        // checkpoints alone.
        let store = CkptStore::new(&dir, 3).unwrap();
        assert!(!orphan.exists(), "orphan temp file must be removed");
        assert_eq!(store.generations(), vec![1]);
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1);
        assert_eq!(f.get("data"), Some(&[1u8; 16][..]));
    }

    #[test]
    fn gc_reports_count_and_ignores_unrelated_files() {
        let dir = scratch("gc-count");
        let store = CkptStore::new(&dir, 3).unwrap();
        fs::write(dir.join(".ckpt-0000000001.qckpt.tmp"), b"x").unwrap();
        fs::write(dir.join(".ckpt-0000000002.qckpt.tmp"), b"y").unwrap();
        fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        assert_eq!(store.gc_temp_files(), 2);
        assert!(dir.join("notes.txt").exists());
        assert_eq!(store.gc_temp_files(), 0, "second sweep finds nothing");
    }

    #[test]
    fn empty_store_has_no_latest() {
        let store = CkptStore::new(scratch("empty"), 2).unwrap();
        assert!(store.latest().is_none());
        assert!(store.generations().is_empty());
    }

    // ---- store-open GC race (regression: a non-zero rank opening the
    // store used to sweep rank 0's live temp file mid-write) ----

    #[test]
    fn store_open_does_not_sweep_a_live_writers_temp_file() {
        let dir = scratch("gc-race");
        let store = CkptStore::new(&dir, 3).unwrap();
        // Freeze rank 0 between `fs::write(tmp)` and `rename`: register
        // the writer guard and put the temp file on disk by hand.
        let tmp = dir.join(format!(".ckpt-{:010}.{EXT}.tmp", 5));
        let guard = WriterGuard::register(store.dir());
        fs::write(&tmp, b"live in-flight write").unwrap();

        // Another rank opens the same store concurrently — its GC sweep
        // must leave the live temp file alone.
        let _other = CkptStore::new(&dir, 3).unwrap();
        assert!(
            tmp.exists(),
            "store open swept a live temp file out from under an active writer"
        );

        // Once the writer is gone (crash case), the next open may sweep.
        drop(guard);
        let _third = CkptStore::new(&dir, 3).unwrap();
        assert!(!tmp.exists(), "orphaned temp file must still be collected");
    }

    #[test]
    fn concurrent_store_opens_never_break_an_active_writer() {
        let dir = scratch("gc-race-threads");
        let store = std::sync::Arc::new(CkptStore::new(&dir, 3).unwrap());
        let writer = {
            let store = store.clone();
            std::thread::spawn(move || {
                for g in 1..=200u64 {
                    store.write(g, &file_with(g as u8)).expect("write survives");
                }
            })
        };
        let opener = {
            let dir = dir.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let _ = CkptStore::new(&dir, 3).expect("open survives");
                }
            })
        };
        writer.join().expect("writer thread");
        opener.join().expect("opener thread");
        let (g, _) = store.latest().expect("checkpoints survived the race");
        assert_eq!(g, 200);
    }

    // ---- delta chains ----

    #[test]
    fn delta_chain_materializes_through_latest() {
        let store = CkptStore::new(scratch("delta-rt"), 4).unwrap();
        assert_eq!(store.delta_base(), None);
        store.write(1, &full_file(1)).unwrap();
        assert_eq!(store.delta_base(), Some(1));
        store.write_delta(2, delta_plan(2)).unwrap();
        assert_eq!(store.delta_base(), Some(2));
        store.write_delta(3, delta_plan(3)).unwrap();

        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 3);
        assert_eq!(f.get("big"), Some(&[0xABu8; 256][..]), "clean via chain");
        assert_eq!(f.get("small"), Some(&[3u8; 4][..]), "dirty from the delta");
        // The delta files really are small: big's 256 bytes appear once.
        let full_len = fs::metadata(store.path_for(1)).unwrap().len();
        let delta_len = fs::metadata(store.path_for(3)).unwrap().len();
        assert!(
            delta_len * 2 < full_len,
            "delta file ({delta_len} B) should be far smaller than full ({full_len} B)"
        );
    }

    #[test]
    fn write_delta_without_base_is_an_error() {
        let store = CkptStore::new(scratch("delta-nobase"), 3).unwrap();
        assert!(store.write_delta(1, delta_plan(1)).is_err());
    }

    #[test]
    fn all_dirty_delta_degrades_to_full() {
        let store = CkptStore::new(scratch("delta-alldirty"), 3).unwrap();
        let plan = vec![("small".to_string(), SectionPlan::Payload(vec![5; 4]))];
        store.write_delta(1, plan).unwrap();
        assert_eq!(store.read_base(1), None, "no-clean delta is a full file");
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1);
        assert_eq!(f.get("small"), Some(&[5u8; 4][..]));
    }

    #[test]
    fn prune_retain_1_keeps_the_base_a_delta_needs() {
        let store = CkptStore::new(scratch("delta-prune1"), 1).unwrap();
        store.write(1, &full_file(1)).unwrap();
        store.write_delta(2, delta_plan(2)).unwrap();
        // retain=1 keeps only generation 2 — but 2 is a delta against 1,
        // so 1 must survive or the chain is orphaned.
        assert_eq!(store.generations(), vec![1, 2]);
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 2);
        assert_eq!(f.get("big"), Some(&[0xABu8; 256][..]));
        // A later full snapshot releases the pin: both old files go.
        store.write(3, &full_file(3)).unwrap();
        assert_eq!(store.generations(), vec![3]);
    }

    #[test]
    fn torn_delta_falls_back_to_its_base() {
        let store = CkptStore::new(scratch("delta-torn"), 4).unwrap();
        store.write(1, &full_file(1)).unwrap();
        let p2 = store.write_delta(2, delta_plan(2)).unwrap();
        let bytes = fs::read(&p2).unwrap();
        fs::write(&p2, &bytes[..bytes.len() / 2]).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 1, "torn delta must fall back to the base generation");
        assert_eq!(f.get("small"), Some(&[1u8; 4][..]));
    }

    #[test]
    fn delta_whose_base_is_missing_is_skipped() {
        let store = CkptStore::new(scratch("delta-orphan"), 4).unwrap();
        store.write(1, &full_file(1)).unwrap();
        store.write_delta(2, delta_plan(2)).unwrap();
        fs::remove_file(store.path_for(1)).unwrap();
        assert!(
            store.latest().is_none(),
            "orphaned delta must not materialize"
        );
    }

    #[test]
    fn resumed_store_can_write_deltas_immediately() {
        let dir = scratch("delta-resume");
        {
            let store = CkptStore::new(&dir, 4).unwrap();
            store.write(1, &full_file(1)).unwrap();
            store.write_delta(2, delta_plan(2)).unwrap();
        }
        // A fresh store (fresh process) restores, then continues the
        // chain without an intervening full snapshot.
        let store = CkptStore::new(&dir, 4).unwrap();
        assert_eq!(store.delta_base(), None, "cache starts empty");
        let (g, _) = store.latest().unwrap();
        assert_eq!(g, 2);
        assert_eq!(store.delta_base(), Some(2), "restore seeds the cache");
        store.write_delta(3, delta_plan(3)).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 3);
        assert_eq!(f.get("big"), Some(&[0xABu8; 256][..]));
    }

    #[test]
    fn compact_collapses_a_chain_into_a_full_snapshot() {
        let store = CkptStore::new(scratch("compact"), 1).unwrap();
        store.write(1, &full_file(1)).unwrap();
        store.write_delta(2, delta_plan(2)).unwrap();
        store.write_delta(3, delta_plan(3)).unwrap();
        assert_eq!(store.generations(), vec![1, 2, 3], "chain pins its bases");
        assert_eq!(store.compact().unwrap(), Some(3));
        assert_eq!(store.read_base(3), None, "compacted file is standalone");
        assert_eq!(
            store.generations(),
            vec![3],
            "compaction releases the chain's pinned bases"
        );
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 3);
        assert_eq!(f.get("big"), Some(&[0xABu8; 256][..]));
        assert_eq!(f.get("small"), Some(&[3u8; 4][..]));
        // Compacting an already-full newest generation is a no-op.
        assert_eq!(store.compact().unwrap(), Some(3));
    }

    #[test]
    fn crash_mid_compaction_leaves_the_chain_intact() {
        let store = CkptStore::new(scratch("compact-crash"), 2).unwrap();
        store.write(1, &full_file(1)).unwrap();
        store.write_delta(2, delta_plan(2)).unwrap();
        // Simulate the crash: compaction died after writing its temp
        // file but before the rename.
        fs::write(
            store.dir().join(format!(".ckpt-{:010}.{EXT}.tmp", 2)),
            b"half-compacted",
        )
        .unwrap();
        // Reopen: the orphan is swept, the original chain still reads.
        let store = CkptStore::new(store.dir().to_path_buf(), 2).unwrap();
        let (g, f) = store.latest().unwrap();
        assert_eq!(g, 2);
        assert_eq!(f.get("big"), Some(&[0xABu8; 256][..]));
        assert_eq!(f.get("small"), Some(&[2u8; 4][..]));
        // And a retried compaction completes.
        assert_eq!(store.compact().unwrap(), Some(2));
        assert_eq!(store.read_base(2), None);
    }

    #[test]
    fn empty_store_compacts_to_none() {
        let store = CkptStore::new(scratch("compact-empty"), 2).unwrap();
        assert_eq!(store.compact().unwrap(), None);
    }
}
