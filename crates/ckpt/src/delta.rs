//! The `qmc-ckpt/v2` wire format: incremental (delta) checkpoints.
//!
//! A v2 file is either *full* (every section carries its payload, like
//! v1) or a *delta* against a named base generation: sections that did
//! not change since the base are stored as an 8-byte reference — the
//! CRC32 and length of the base's payload — instead of the payload
//! itself. Resolution substitutes the base's bytes and re-verifies the
//! CRC, so a reference can never silently pick up the wrong content.
//!
//! Layout (shared envelope: magic + body + `QEND` + whole-file CRC):
//!
//! ```text
//! str  schema            "qmc-ckpt/v2"
//! u8   kind              0 = full, 1 = delta
//! u64  base_generation   (delta only)
//! u64  n_sections
//! per section:
//!   str name
//!   u8  tag              0 = payload, 1 = base reference
//!   tag 0: bytes payload + u32 crc32(payload)
//!   tag 1: u32 crc32(base payload) + u32 len(base payload)
//! ```
//!
//! v1 files parse through the same entry point ([`RawCkpt::from_bytes`])
//! as base-less payload-only files, so every reader in the crate is
//! automatically forward-compatible with old full checkpoints.

use crate::crc32::crc32;
use crate::file::{envelope_body, envelope_seal, CkptFile, SCHEMA};
use crate::wire::{CkptError, Decoder, Encoder};

/// Schema identifier for delta-capable checkpoint files.
pub const SCHEMA_V2: &str = "qmc-ckpt/v2";

/// One section of a parsed (unresolved) checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionData {
    /// The section's bytes are stored in this file.
    Payload(Vec<u8>),
    /// The section is unchanged since the base generation; `crc` and
    /// `len` identify the base payload this reference resolves to.
    BaseRef {
        /// CRC32 of the referenced base payload.
        crc: u32,
        /// Length of the referenced base payload in bytes.
        len: u32,
    },
}

/// One section of a delta write plan, produced by
/// [`crate::plan_sections`] and consumed by
/// [`crate::CkptStore::write_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionPlan {
    /// The section changed (or the write is full): store these bytes.
    Payload(Vec<u8>),
    /// The section is unchanged since the last successful snapshot;
    /// store a reference to the base generation's payload.
    Clean,
}

/// A parsed checkpoint file before base resolution: the section list
/// plus the base generation a delta references (`None` for full files,
/// including every v1 file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCkpt {
    /// Base generation this file is a delta against, if any.
    pub base: Option<u64>,
    /// Sections in file order.
    pub sections: Vec<(String, SectionData)>,
}

impl RawCkpt {
    /// Serialize as a v2 file (full when `base` is `None`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.str(SCHEMA_V2);
        match self.base {
            None => enc.u8(0),
            Some(g) => {
                enc.u8(1);
                enc.u64(g);
            }
        }
        enc.u64(self.sections.len() as u64);
        for (name, data) in &self.sections {
            enc.str(name);
            match data {
                SectionData::Payload(p) => {
                    enc.u8(0);
                    enc.bytes(p);
                    enc.u32(crc32(p));
                }
                SectionData::BaseRef { crc, len } => {
                    enc.u8(1);
                    enc.u32(*crc);
                    enc.u32(*len);
                }
            }
        }
        envelope_seal(&enc.into_bytes())
    }

    /// Parse and fully validate either schema: v1 files come back as
    /// base-less payload-only section lists, v2 files keep their
    /// references for later [`RawCkpt::resolve`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Decoder::new(envelope_body(bytes)?);
        let schema = dec.str()?;
        if schema == SCHEMA {
            let n = dec.u64()?;
            let mut sections = Vec::new();
            for _ in 0..n {
                let name = dec.str()?;
                let payload = dec.bytes()?.to_vec();
                let crc = dec.u32()?;
                if crc32(&payload) != crc {
                    return Err(CkptError::BadCrc { section: name });
                }
                sections.push((name, SectionData::Payload(payload)));
            }
            dec.expect_empty()?;
            return Ok(Self {
                base: None,
                sections,
            });
        }
        if schema != SCHEMA_V2 {
            return Err(CkptError::BadSchema { found: schema });
        }
        let base = match dec.u8()? {
            0 => None,
            1 => Some(dec.u64()?),
            k => {
                return Err(CkptError::corrupt(format!(
                    "invalid checkpoint kind byte {k}"
                )))
            }
        };
        let n = dec.u64()?;
        let mut sections = Vec::new();
        for _ in 0..n {
            let name = dec.str()?;
            let data = match dec.u8()? {
                0 => {
                    let payload = dec.bytes()?.to_vec();
                    let crc = dec.u32()?;
                    if crc32(&payload) != crc {
                        return Err(CkptError::BadCrc { section: name });
                    }
                    SectionData::Payload(payload)
                }
                1 => {
                    if base.is_none() {
                        return Err(CkptError::corrupt(format!(
                            "section {name:?} is a base reference in a full file"
                        )));
                    }
                    SectionData::BaseRef {
                        crc: dec.u32()?,
                        len: dec.u32()?,
                    }
                }
                t => {
                    return Err(CkptError::corrupt(format!(
                        "invalid section tag {t} in section {name:?}"
                    )))
                }
            };
            sections.push((name, data));
        }
        dec.expect_empty()?;
        Ok(Self { base, sections })
    }

    /// Materialize into a plain [`CkptFile`]: payload sections are kept,
    /// base references are substituted from `base` (the already
    /// materialized base generation) after re-verifying CRC and length.
    pub fn resolve(self, base: Option<&CkptFile>) -> Result<CkptFile, CkptError> {
        let mut out = CkptFile::new();
        for (name, data) in self.sections {
            match data {
                SectionData::Payload(p) => out.add(&name, p),
                SectionData::BaseRef { crc, len } => {
                    let base = base.ok_or_else(|| {
                        CkptError::corrupt(format!(
                            "section {name:?} references a base but none was supplied"
                        ))
                    })?;
                    let payload = base
                        .get(&name)
                        .ok_or_else(|| CkptError::MissingSection { name: name.clone() })?;
                    if payload.len() != len as usize || crc32(payload) != crc {
                        return Err(CkptError::BadCrc { section: name });
                    }
                    out.add(&name, payload.to_vec());
                }
            }
        }
        Ok(out)
    }
}

/// Cheap header peek: the base generation a serialized file references,
/// without validating CRCs (v1 and v2-full files yield `None`, as does
/// anything whose header fails to parse). Used by pruning to discover
/// chain dependencies without materializing whole files.
pub(crate) fn peek_base(bytes: &[u8]) -> Option<u64> {
    let magic = crate::file::MAGIC;
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic.as_slice() {
        return None;
    }
    let mut dec = Decoder::new(&bytes[magic.len()..]);
    if dec.str().ok()? != SCHEMA_V2 {
        return None;
    }
    if dec.u8().ok()? != 1 {
        return None;
    }
    dec.u64().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_file() -> CkptFile {
        let mut f = CkptFile::new();
        f.add("alpha", vec![1, 2, 3]);
        f.add("beta", (0u8..100).collect());
        f
    }

    fn delta_against_base() -> RawCkpt {
        let base = base_file();
        let beta = base.get("beta").expect("beta present");
        RawCkpt {
            base: Some(7),
            sections: vec![
                ("alpha".into(), SectionData::Payload(vec![9, 9])),
                (
                    "beta".into(),
                    SectionData::BaseRef {
                        crc: crc32(beta),
                        len: beta.len() as u32,
                    },
                ),
            ],
        }
    }

    #[test]
    fn v2_full_round_trips() {
        let raw = RawCkpt {
            base: None,
            sections: vec![
                ("a".into(), SectionData::Payload(vec![1])),
                ("b".into(), SectionData::Payload(vec![])),
            ],
        };
        let bytes = raw.to_bytes();
        let back = RawCkpt::from_bytes(&bytes).expect("parses");
        assert_eq!(back, raw);
        let file = back.resolve(None).expect("no refs to resolve");
        assert_eq!(file.get("a"), Some(&[1u8][..]));
        assert_eq!(file.get("b"), Some(&[][..]));
    }

    #[test]
    fn v2_delta_round_trips_and_resolves() {
        let raw = delta_against_base();
        let back = RawCkpt::from_bytes(&raw.to_bytes()).expect("parses");
        assert_eq!(back.base, Some(7));
        let file = back.resolve(Some(&base_file())).expect("resolves");
        assert_eq!(file.get("alpha"), Some(&[9u8, 9][..]));
        assert_eq!(file.get("beta"), base_file().get("beta"));
    }

    #[test]
    fn v1_files_parse_as_base_less_payloads() {
        let bytes = base_file().to_bytes();
        let raw = RawCkpt::from_bytes(&bytes).expect("v1 parses through v2 reader");
        assert_eq!(raw.base, None);
        assert!(raw
            .sections
            .iter()
            .all(|(_, d)| matches!(d, SectionData::Payload(_))));
        let file = raw.resolve(None).expect("resolves");
        assert_eq!(file.get("alpha"), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn resolve_rejects_missing_base_section() {
        let mut raw = delta_against_base();
        raw.sections[1].0 = "gamma".into();
        assert!(matches!(
            raw.resolve(Some(&base_file())),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn resolve_rejects_crc_mismatch_against_base() {
        let mut raw = delta_against_base();
        if let SectionData::BaseRef { crc, .. } = &mut raw.sections[1].1 {
            *crc ^= 1;
        }
        assert!(matches!(
            raw.resolve(Some(&base_file())),
            Err(CkptError::BadCrc { .. })
        ));
    }

    #[test]
    fn resolve_rejects_length_mismatch_against_base() {
        let mut raw = delta_against_base();
        if let SectionData::BaseRef { len, .. } = &mut raw.sections[1].1 {
            *len += 1;
        }
        assert!(matches!(
            raw.resolve(Some(&base_file())),
            Err(CkptError::BadCrc { .. })
        ));
    }

    #[test]
    fn resolve_without_base_rejects_references() {
        let raw = delta_against_base();
        assert!(raw.resolve(None).is_err());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = delta_against_base().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                RawCkpt::from_bytes(&bytes[..cut]).is_err(),
                "torn v2 file (cut at {cut}/{}) must not parse",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = delta_against_base().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                RawCkpt::from_bytes(&bad).is_err(),
                "bit flip at byte {i} must not parse"
            );
        }
    }

    #[test]
    fn peek_base_reads_header_only() {
        assert_eq!(peek_base(&delta_against_base().to_bytes()), Some(7));
        let full = RawCkpt {
            base: None,
            sections: vec![],
        };
        assert_eq!(peek_base(&full.to_bytes()), None);
        assert_eq!(peek_base(&base_file().to_bytes()), None, "v1 has no base");
        assert_eq!(peek_base(b"garbage"), None);
    }
}
