//! Checkpointing for [`qmc_obs::Registry`] metrics.
//!
//! Engines own a registry of acceptance counters and cluster-size
//! histograms; resuming a run must resume those too or the reported
//! rates drift from the uninterrupted trajectory. Registries register a
//! fixed set of names at construction time, so restore is strict: the
//! saved names must match the fresh registry's names, in order —
//! anything else means the checkpoint belongs to a different engine
//! build and is rejected as corrupt.

use crate::wire::{CkptError, Decoder, Encoder};
use qmc_obs::{Hist, Registry, N_BUCKETS};

/// Append every counter and histogram of `reg` to `enc`.
pub fn save_registry(enc: &mut Encoder, reg: &Registry) {
    let counters = reg.counters();
    enc.u64(counters.len() as u64);
    for (name, value) in counters {
        enc.str(name);
        enc.u64(*value);
    }
    let hists = reg.hists();
    enc.u64(hists.len() as u64);
    for (name, h) in hists {
        enc.str(name);
        enc.u64s(&h.buckets);
        enc.u64(h.count);
        enc.u64(h.sum);
        enc.u64(h.min);
        enc.u64(h.max);
    }
}

/// Restore `reg` from bytes written by [`save_registry`]. The registry
/// must already hold the same names in the same order (engines register
/// everything in their constructor).
pub fn load_registry(dec: &mut Decoder, reg: &mut Registry) -> Result<(), CkptError> {
    let n_counters = dec.u64()? as usize;
    if n_counters != reg.counters().len() {
        return Err(CkptError::corrupt(format!(
            "registry has {} counters, checkpoint has {n_counters}",
            reg.counters().len()
        )));
    }
    for i in 0..n_counters {
        let name = dec.str()?;
        let value = dec.u64()?;
        if name != reg.counters()[i].0 {
            return Err(CkptError::corrupt(format!(
                "counter {i} is {:?}, checkpoint has {name:?}",
                reg.counters()[i].0
            )));
        }
        reg.set_counter(i, value);
    }
    let n_hists = dec.u64()? as usize;
    if n_hists != reg.hists().len() {
        return Err(CkptError::corrupt(format!(
            "registry has {} histograms, checkpoint has {n_hists}",
            reg.hists().len()
        )));
    }
    for i in 0..n_hists {
        let name = dec.str()?;
        if name != reg.hists()[i].0 {
            return Err(CkptError::corrupt(format!(
                "histogram {i} is {:?}, checkpoint has {name:?}",
                reg.hists()[i].0
            )));
        }
        let buckets = dec.u64s()?;
        if buckets.len() != N_BUCKETS {
            return Err(CkptError::corrupt(format!(
                "histogram {name:?} has {} buckets",
                buckets.len()
            )));
        }
        let h: &mut Hist = reg.hist_mut(i);
        h.buckets.copy_from_slice(&buckets);
        h.count = dec.u64()?;
        h.sum = dec.u64()?;
        h.min = dec.u64()?;
        h.max = dec.u64()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("accepted");
        r.add(c, 41);
        r.add_named("proposed", 100);
        let h = r.hist("cluster");
        r.record(h, 5);
        r.record(h, 1000);
        r
    }

    fn fresh_like(src: &Registry) -> Registry {
        // A freshly constructed engine registers the same names with
        // zero values; emulate that shape.
        let mut r = Registry::new();
        for (name, _) in src.counters() {
            r.counter(name);
        }
        for (name, _) in src.hists() {
            r.hist(name);
        }
        r
    }

    #[test]
    fn registry_round_trips_exactly() {
        let orig = sample();
        let mut enc = Encoder::new();
        save_registry(&mut enc, &orig);
        let bytes = enc.into_bytes();
        let mut back = fresh_like(&orig);
        load_registry(&mut Decoder::new(&bytes), &mut back).unwrap();
        assert_eq!(back.get("accepted"), 41);
        assert_eq!(back.get("proposed"), 100);
        let h = back.hist_get("cluster").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1005, 5, 1000));
        assert_eq!(
            h.nonzero().collect::<Vec<_>>(),
            orig.hist_get("cluster")
                .unwrap()
                .nonzero()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let orig = sample();
        let mut enc = Encoder::new();
        save_registry(&mut enc, &orig);
        let bytes = enc.into_bytes();
        let mut other = Registry::new();
        other.counter("different");
        other.counter("proposed");
        other.hist("cluster");
        assert!(matches!(
            load_registry(&mut Decoder::new(&bytes), &mut other),
            Err(CkptError::Corrupt { .. })
        ));
    }
}
