//! CRC-32 used by the checkpoint wire format.
//!
//! The implementation moved to [`qmc_comm::crc`] (the bottom of the
//! workspace dependency graph) when the TCP frame transport started
//! guarding its frames with the same checksum; this module re-exports it
//! so every existing `crate::crc32::crc32` call site — and the public
//! `qmc_ckpt::crc32` path — keeps working unchanged.

pub use qmc_comm::crc::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_crc_is_the_shared_ieee_crc32() {
        // The on-disk format is pinned to IEEE CRC-32; if the shared
        // implementation ever drifted, every existing checkpoint file
        // would be rejected wholesale.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
