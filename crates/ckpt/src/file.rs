//! The on-disk container: named, CRC32-guarded sections under a schema
//! header, closed by a trailer that proves the file was written to the
//! end. A torn write (crash mid-`write`) fails either the trailer check
//! or a section CRC and is rejected as a whole — readers then fall back
//! to the previous generation (see [`crate::CkptStore`]).

use crate::crc32::crc32;
use crate::wire::{CkptError, Decoder, Encoder};
use crate::Checkpoint;

/// Schema identifier written into every checkpoint file header.
pub const SCHEMA: &str = "qmc-ckpt/v1";

/// 8-byte file magic.
pub(crate) const MAGIC: &[u8; 8] = b"QMCCKPT\0";
/// 4-byte trailer magic; its presence (plus the file CRC) distinguishes
/// a complete file from a torn one.
pub(crate) const TRAILER: &[u8; 4] = b"QEND";

/// Validate the shared file envelope (magic, trailer presence, whole-file
/// CRC) and return the body between the magic and the trailer — the
/// schema string onward. Shared by the v1 reader here and the v2 reader
/// in [`crate::delta`].
pub(crate) fn envelope_body(bytes: &[u8]) -> Result<&[u8], CkptError> {
    if bytes.len() < MAGIC.len() + TRAILER.len() + 4 {
        return Err(CkptError::Truncated { what: "file" });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let body_end = bytes.len() - TRAILER.len() - 4;
    if &bytes[body_end..body_end + TRAILER.len()] != TRAILER {
        return Err(CkptError::Truncated { what: "trailer" });
    }
    let stored_crc = u32::from_le_bytes(
        bytes[body_end + TRAILER.len()..]
            .try_into()
            .expect("length check above leaves exactly 4 CRC bytes"),
    );
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(CkptError::BadCrc {
            section: "<file>".to_string(),
        });
    }
    Ok(&bytes[MAGIC.len()..body_end])
}

/// Close a file body (everything after the magic) into the shared
/// envelope: magic + body + trailer + whole-file CRC.
pub(crate) fn envelope_seal(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + body.len() + TRAILER.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(body);
    let file_crc = crc32(&out);
    out.extend_from_slice(TRAILER);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

/// An in-memory checkpoint file: an ordered list of named sections.
#[derive(Default, Clone)]
pub struct CkptFile {
    sections: Vec<(String, Vec<u8>)>,
}

impl CkptFile {
    /// Fresh file with no sections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a raw section (replaces an existing section of that name).
    pub fn add(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(s) = self.sections.iter_mut().find(|(n, _)| n == name) {
            s.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Append a [`Checkpoint`] state as a section.
    pub fn add_state(&mut self, name: &str, state: &impl Checkpoint) {
        self.add(name, crate::save_state(state));
    }

    /// Payload of section `name`, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Payload of section `name`, or [`CkptError::MissingSection`].
    pub fn require(&self, name: &str) -> Result<&[u8], CkptError> {
        self.get(name).ok_or_else(|| CkptError::MissingSection {
            name: name.to_string(),
        })
    }

    /// Restore a [`Checkpoint`] state from section `name`.
    pub fn restore(&self, name: &str, state: &mut impl Checkpoint) -> Result<(), CkptError> {
        crate::load_state(self.require(name)?, state)
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// `(name, payload)` pairs in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.sections
            .iter()
            .map(|(n, p)| (n.as_str(), p.as_slice()))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the file holds no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serialize: magic, schema, section count, per-section
    /// `(name, payload, crc32(payload))`, then trailer magic + CRC32 of
    /// everything before the trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.str(SCHEMA);
        enc.u64(self.sections.len() as u64);
        for (name, payload) in &self.sections {
            enc.str(name);
            enc.bytes(payload);
            enc.u32(crc32(payload));
        }
        envelope_seal(&enc.into_bytes())
    }

    /// Parse and fully validate a serialized file: magic, schema,
    /// trailer presence, whole-file CRC, and every section CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Decoder::new(envelope_body(bytes)?);
        let schema = dec.str()?;
        if schema != SCHEMA {
            return Err(CkptError::BadSchema { found: schema });
        }
        let n = dec.u64()?;
        let mut sections = Vec::new();
        for _ in 0..n {
            let name = dec.str()?;
            let payload = dec.bytes()?.to_vec();
            let crc = dec.u32()?;
            if crc32(&payload) != crc {
                return Err(CkptError::BadCrc { section: name });
            }
            sections.push((name, payload));
        }
        dec.expect_empty()?;
        Ok(Self { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CkptFile {
        let mut f = CkptFile::new();
        f.add("alpha", vec![1, 2, 3]);
        f.add("beta", vec![]);
        f.add("gamma", (0u8..200).collect());
        f
    }

    #[test]
    fn file_round_trips() {
        let f = sample();
        let bytes = f.to_bytes();
        let back = CkptFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("alpha"), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.get("beta"), Some(&[][..]));
        assert_eq!(back.get("missing"), None);
        assert!(matches!(
            back.require("missing"),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn add_replaces_existing_section() {
        let mut f = sample();
        f.add("alpha", vec![9]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get("alpha"), Some(&[9u8][..]));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CkptFile::from_bytes(&bytes[..cut]).is_err(),
                "torn file (cut at {cut}/{}) must not parse",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                CkptFile::from_bytes(&bad).is_err(),
                "bit flip at byte {i} must not parse"
            );
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        // Hand-build a file with a future schema string.
        let mut out = Vec::from(&b"QMCCKPT\0"[..]);
        let mut enc = Encoder::new();
        enc.str("qmc-ckpt/v999");
        enc.u64(0);
        out.extend_from_slice(&enc.into_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(b"QEND");
        out.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            CkptFile::from_bytes(&out),
            Err(CkptError::BadSchema { .. })
        ));
    }
}
