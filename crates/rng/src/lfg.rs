//! Additive lagged-Fibonacci generator r(55, 24) — the classic early-90s
//! parallel Monte Carlo generator.

use crate::{Rng64, SplitMix64};

const LAG_LONG: usize = 55;
const LAG_SHORT: usize = 24;

/// Additive lagged-Fibonacci generator:
/// `x_n = x_{n−55} + x_{n−24} (mod 2^64)`.
///
/// This recurrence (with 16- or 32-bit words) powered many production QMC
/// codes of the SC'93 era because a vector/parallel machine can evaluate a
/// whole batch of terms at once and each processor gets an independent
/// generator simply by filling its 55-word lag table from a distinct seed
/// sequence (*parameterization* splitting). We keep that scheme: the table
/// is filled from a rank-keyed [`SplitMix64`], and at least one entry is
/// forced odd so the maximal period `(2^55 − 1)·2^63` is attained.
#[derive(Debug, Clone)]
pub struct LaggedFibonacci55 {
    table: [u64; LAG_LONG],
    /// Index of x_{n-55} (the slot about to be overwritten).
    idx: usize,
}

impl LaggedFibonacci55 {
    /// Create a generator whose lag table is expanded from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::from_splitmix(SplitMix64::new(seed))
    }

    /// Parameterized per-rank stream: table filled from an independent
    /// SplitMix64 sequence keyed by `(seed, rank)`.
    pub fn param_stream(seed: u64, rank: usize) -> Self {
        Self::from_splitmix(SplitMix64::new(SplitMix64::derive_stream_seed(
            seed,
            rank as u64,
        )))
    }

    fn from_splitmix(mut sm: SplitMix64) -> Self {
        let mut table = [0u64; LAG_LONG];
        for slot in table.iter_mut() {
            *slot = sm.next_u64();
        }
        // Guarantee at least one odd entry (else the low bit is stuck at 0
        // and the period collapses).
        table[0] |= 1;
        let mut g = Self { table, idx: 0 };
        // Warm up: the first few hundred outputs of an LFG retain traces of
        // the fill; discard 10 full table turnovers.
        for _ in 0..10 * LAG_LONG {
            g.next_u64();
        }
        g
    }
}

impl Rng64 for LaggedFibonacci55 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // x[idx] currently holds x_{n-55}; the short lag is 24 behind the
        // *new* element, i.e. at idx + (55 - 24) mod 55.
        let short = {
            let j = self.idx + (LAG_LONG - LAG_SHORT);
            if j >= LAG_LONG {
                j - LAG_LONG
            } else {
                j
            }
        };
        let value = self.table[self.idx].wrapping_add(self.table[short]);
        self.table[self.idx] = value;
        self.idx += 1;
        if self.idx == LAG_LONG {
            self.idx = 0;
        }
        value
    }
}

impl qmc_ckpt::Checkpoint for LaggedFibonacci55 {
    fn kind(&self) -> &'static str {
        "rng.lfg55"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64s(&self.table);
        enc.u64(self.idx as u64);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let table = dec.u64s()?;
        let idx = dec.u64()? as usize;
        if table.len() != LAG_LONG || idx >= LAG_LONG {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "lfg55 table len {} idx {idx}",
                table.len()
            )));
        }
        self.table.copy_from_slice(&table);
        self.idx = idx;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_matches_direct_evaluation() {
        // Reconstruct the sequence with an explicit history buffer and
        // check the ring-buffer implementation against it.
        let mut sm = SplitMix64::new(31337);
        let mut hist: Vec<u64> = (0..LAG_LONG).map(|_| sm.next_u64()).collect();
        hist[0] |= 1;
        let mut g = LaggedFibonacci55 {
            table: hist.clone().try_into().unwrap(),
            idx: 0,
        };
        for n in LAG_LONG..LAG_LONG + 500 {
            let expect = hist[n - LAG_LONG].wrapping_add(hist[n - LAG_SHORT]);
            hist.push(expect);
            assert_eq!(g.next_u64(), expect, "mismatch at n = {n}");
        }
    }

    #[test]
    fn param_streams_differ() {
        let mut a = LaggedFibonacci55::param_stream(9, 0);
        let mut b = LaggedFibonacci55::param_stream(9, 1);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn low_bit_not_stuck() {
        let mut g = LaggedFibonacci55::new(4);
        let mut ones = 0usize;
        for _ in 0..4096 {
            ones += (g.next_u64() & 1) as usize;
        }
        // Low bit should be roughly balanced.
        assert!((1500..=2600).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = LaggedFibonacci55::new(1234);
        let mut b = LaggedFibonacci55::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cross_stream_correlation_small() {
        // Pearson correlation between two parameterized streams.
        let mut a = LaggedFibonacci55::param_stream(5, 10);
        let mut b = LaggedFibonacci55::param_stream(5, 11);
        let n = 50_000;
        let (mut sa, mut sb, mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = a.next_f64();
            let y = b.next_f64();
            sa += x;
            sb += y;
            sab += x * y;
            saa += x * x;
            sbb += y * y;
        }
        let nf = n as f64;
        let cov = sab / nf - (sa / nf) * (sb / nf);
        let var_a = saa / nf - (sa / nf).powi(2);
        let var_b = sbb / nf - (sb / nf).powi(2);
        let corr = cov / (var_a * var_b).sqrt();
        assert!(corr.abs() < 0.02, "corr = {corr}");
    }
}
