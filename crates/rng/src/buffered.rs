//! Batched draw buffering for hot Monte Carlo kernels.

use crate::Rng64;

/// Refill batch size: one cache-line-friendly block of raw outputs.
const BATCH: usize = 256;

/// Wraps any [`Rng64`] and serves `next_u64` from an internal block
/// refilled in bulk with [`Rng64::fill_u64`].
///
/// The served sequence is **identical** to calling `next_u64` on the
/// inner generator directly — buffering only amortizes per-draw dispatch
/// (trait-object hops, state loads/stores) across a whole batch, which is
/// what the Metropolis kernels want. Because the stream is unchanged,
/// wrapping a driver's generator in `Buffered` can never perturb a
/// fixed-seed trajectory.
///
/// ```
/// use qmc_rng::{Buffered, Rng64, Xoshiro256StarStar};
/// let mut plain = Xoshiro256StarStar::new(7);
/// let mut fast = Buffered::new(Xoshiro256StarStar::new(7));
/// for _ in 0..1000 {
///     assert_eq!(plain.next_u64(), fast.next_u64());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Buffered<R: Rng64> {
    inner: R,
    buf: [u64; BATCH],
    pos: usize,
}

impl<R: Rng64> Buffered<R> {
    /// Wrap `inner`; the first draw triggers the first bulk refill.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: [0; BATCH],
            pos: BATCH,
        }
    }

    /// Unwrap the inner generator.
    ///
    /// Note the inner state has advanced past any still-buffered (unserved)
    /// values, so continuing on the unwrapped generator skips them.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Rng64> Rng64 for Buffered<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == BATCH {
            self.inner.fill_u64(&mut self.buf);
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        // Drain what is buffered, then bulk-fill the rest directly.
        let buffered = BATCH - self.pos;
        let n = buffered.min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        if out.len() > n {
            self.inner.fill_u64(&mut out[n..]);
        }
    }
}

impl<R: Rng64 + qmc_ckpt::Checkpoint> qmc_ckpt::Checkpoint for Buffered<R> {
    fn kind(&self) -> &'static str {
        "rng.buffered"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        // The undrained tail of the buffer is part of the stream: the
        // inner generator has already advanced past it, so dropping it
        // would skip `BATCH - pos` draws on resume.
        enc.u64(self.pos as u64);
        enc.u64s(&self.buf);
        enc.state(&self.inner);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let pos = dec.u64()? as usize;
        let buf = dec.u64s()?;
        if pos > BATCH || buf.len() != BATCH {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "buffered rng pos {pos} buf len {}",
                buf.len()
            )));
        }
        self.pos = pos;
        self.buf.copy_from_slice(&buf);
        dec.load_state(&mut self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LaggedFibonacci55, Lcg64, SplitMix64, Xoshiro256StarStar};

    fn assert_stream_identical<R: Rng64 + Clone>(rng: R) {
        let mut plain = rng.clone();
        let mut buffered = Buffered::new(rng);
        // Mix draw kinds so batch boundaries land at odd offsets.
        for i in 0..5000usize {
            match i % 4 {
                0 => assert_eq!(plain.next_u64(), buffered.next_u64()),
                1 => assert_eq!(plain.next_f64(), buffered.next_f64()),
                2 => assert_eq!(plain.index(37), buffered.index(37)),
                _ => assert_eq!(plain.metropolis(0.4), buffered.metropolis(0.4)),
            }
        }
    }

    #[test]
    fn buffered_stream_identical_all_generators() {
        assert_stream_identical(SplitMix64::new(5));
        assert_stream_identical(Lcg64::new(5));
        assert_stream_identical(Xoshiro256StarStar::new(5));
        assert_stream_identical(LaggedFibonacci55::new(5));
    }

    #[test]
    fn fill_u64_matches_repeated_next_u64_all_generators() {
        fn check<R: Rng64 + Clone>(rng: R) {
            for len in [0usize, 1, 7, 256, 1000] {
                let mut a = rng.clone();
                let mut b = rng.clone();
                let mut bulk = vec![0u64; len];
                a.fill_u64(&mut bulk);
                let single: Vec<u64> = (0..len).map(|_| b.next_u64()).collect();
                assert_eq!(bulk, single, "len = {len}");
            }
        }
        check(SplitMix64::new(9));
        check(Lcg64::new(9));
        check(Xoshiro256StarStar::new(9));
        check(LaggedFibonacci55::new(9));
    }

    #[test]
    fn buffered_fill_u64_spans_batch_boundary() {
        let mut plain = Xoshiro256StarStar::new(3);
        let mut buffered = Buffered::new(Xoshiro256StarStar::new(3));
        // Offset the buffer position, then bulk-fill across the boundary.
        for _ in 0..100 {
            let _ = buffered.next_u64();
            let _ = plain.next_u64();
        }
        let mut a = vec![0u64; 400];
        let mut b = vec![0u64; 400];
        buffered.fill_u64(&mut a);
        plain.fill_u64(&mut b);
        assert_eq!(a, b);
    }
}
