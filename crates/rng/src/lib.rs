//! Parallel pseudo-random number generation for quantum Monte Carlo.
//!
//! A 1993-era massively parallel Monte Carlo code lives or dies by its
//! random-number strategy: every processor needs its *own* stream, the
//! streams must be statistically independent, and a run must be exactly
//! reproducible for a given `(seed, nranks)` pair. This crate provides the
//! generators such codes used (and their modern, better-understood
//! relatives), all with explicit stream-splitting support:
//!
//! * [`SplitMix64`] — a seed expander / fast scrambling generator.
//! * [`Lcg64`] — 64-bit linear congruential generator with *O(log n)*
//!   jump-ahead, enabling leapfrog and block splitting across ranks.
//! * [`Xoshiro256StarStar`] — high-quality general-purpose generator with a
//!   polynomial jump of 2^128 steps for stream separation.
//! * [`LaggedFibonacci55`] — the additive lagged-Fibonacci generator
//!   r(55, 24) that was the workhorse of early parallel QMC codes.
//!
//! All generators implement the [`Rng64`] trait, which supplies the
//! distributions Monte Carlo kernels need (uniform `f64`, ranges,
//! Bernoulli, Gaussian, exponential) on top of a raw `u64` source.
//!
//! # Stream splitting
//!
//! [`StreamFactory`] hands out per-rank generators. Two strategies are
//! offered, matching the two classic approaches:
//!
//! * **Block splitting** (jump-ahead): rank *r* starts at position
//!   `r * 2^40` of a single master sequence ([`Lcg64`]) or after `r`
//!   applications of the 2^128 jump ([`Xoshiro256StarStar`]).
//! * **Parameterization**: each rank derives an independent seed via
//!   [`SplitMix64`] (used for [`LaggedFibonacci55`], whose lag table is
//!   filled from a rank-keyed SplitMix sequence).
//!
//! ```
//! use qmc_rng::{Rng64, StreamFactory};
//!
//! // One reproducible, independent stream per parallel rank:
//! let factory = StreamFactory::new(42);
//! let mut rank0 = factory.stream(0);
//! let mut rank1 = factory.stream(1);
//! assert_ne!(rank0.next_u64(), rank1.next_u64());
//!
//! // Monte Carlo helpers on any generator:
//! let accept = rank0.metropolis(0.75); // true with probability 0.75
//! let idx = rank0.index(10);           // uniform in 0..10
//! assert!(idx < 10);
//! let _ = accept;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffered;
mod lcg;
mod lfg;
mod splitmix;
mod stream;
mod xoshiro;

pub use buffered::Buffered;
pub use lcg::Lcg64;
pub use lfg::LaggedFibonacci55;
pub use splitmix::SplitMix64;
pub use stream::{StreamFactory, StreamKind};
pub use xoshiro::Xoshiro256StarStar;

/// A source of raw 64-bit randomness plus the derived distributions Monte
/// Carlo kernels need.
///
/// The provided methods are deliberately simple and allocation-free; they
/// are called in the innermost loops of every update kernel in the
/// workspace.
pub trait Rng64 {
    /// Produce the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Fill `out` with consecutive raw outputs — exactly the sequence
    /// repeated [`Self::next_u64`] calls would produce (so buffering draws
    /// through [`Buffered`] never changes a trajectory). Generators
    /// override this to keep their state in registers across the whole
    /// batch, amortizing per-draw dispatch in the Metropolis kernels.
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.next_u64();
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Uniform `f64` in `(0, 1]` — convenient when a logarithm follows.
    #[inline]
    fn next_f64_open_zero(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (((self.next_u64() >> 11) + 1) as f64) * SCALE
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0) is meaningless");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Metropolis acceptance: accept with probability `min(1, ratio)`.
    ///
    /// Avoids drawing a random number when `ratio >= 1`, which matters in
    /// the hot loop (roughly half of all proposals in equilibrium).
    #[inline]
    fn metropolis(&mut self, ratio: f64) -> bool {
        ratio >= 1.0 || self.next_f64() < ratio
    }

    /// Standard normal deviate via the Marsaglia polar method.
    fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Exponential deviate with unit mean.
    #[inline]
    fn exponential(&mut self) -> f64 {
        -self.next_f64_open_zero().ln()
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_u64(&mut self, out: &mut [u64]) {
        (**self).fill_u64(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared helper: first/second moments of `n` uniform draws.
    fn moments<R: Rng64>(rng: &mut R, n: usize) -> (f64, f64) {
        let mut s = 0.0;
        let mut s2 = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            s += x;
            s2 += x * x;
        }
        (s / n as f64, s2 / n as f64)
    }

    fn check_uniform_moments<R: Rng64>(rng: &mut R) {
        let n = 200_000;
        let (m1, m2) = moments(rng, n);
        // mean 1/2 (σ = 1/√(12 n)), second moment 1/3.
        let tol = 5.0 / (12.0f64 * n as f64).sqrt();
        assert!((m1 - 0.5).abs() < tol, "mean {m1} off");
        assert!((m2 - 1.0 / 3.0).abs() < 3.0 * tol, "m2 {m2} off");
    }

    #[test]
    fn uniform_moments_all_generators() {
        check_uniform_moments(&mut SplitMix64::new(12345));
        check_uniform_moments(&mut Lcg64::new(12345));
        check_uniform_moments(&mut Xoshiro256StarStar::new(12345));
        check_uniform_moments(&mut LaggedFibonacci55::new(12345));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open_zero();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = SplitMix64::new(99);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_power_of_two() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(64) < 64);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Lcg64::new(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn metropolis_always_accepts_ratio_ge_one() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert!(rng.metropolis(1.0));
            assert!(rng.metropolis(17.5));
        }
    }

    #[test]
    fn metropolis_never_accepts_zero() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(!rng.metropolis(0.0));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256StarStar::new(2024);
        let n = 200_000;
        let mut s = 0.0;
        let mut s2 = 0.0;
        let mut s4 = 0.0;
        for _ in 0..n {
            let x = rng.gaussian();
            s += x;
            s2 += x * x;
            s4 += x * x * x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64;
        let kurt = s4 / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        assert!((kurt - 3.0).abs() < 0.15, "kurtosis {kurt}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = LaggedFibonacci55::new(77);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // and it actually moved something (overwhelmingly likely)
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chi_square_bytes() {
        // χ² over 256 byte buckets for each generator; 5σ band.
        fn chi2<R: Rng64>(rng: &mut R) -> f64 {
            let n = 1 << 16;
            let mut counts = [0u32; 256];
            for _ in 0..n {
                let x = rng.next_u64();
                for b in x.to_le_bytes() {
                    counts[b as usize] += 1;
                }
            }
            let expected = (n * 8) as f64 / 256.0;
            counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum()
        }
        // χ²(255 dof): mean 255, σ = √(2·255) ≈ 22.6
        for chi in [
            chi2(&mut SplitMix64::new(42)),
            chi2(&mut Lcg64::new(42)),
            chi2(&mut Xoshiro256StarStar::new(42)),
            chi2(&mut LaggedFibonacci55::new(42)),
        ] {
            assert!((chi - 255.0).abs() < 5.0 * 22.6, "chi2 = {chi}");
        }
    }
}
