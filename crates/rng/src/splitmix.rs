//! SplitMix64: Steele, Lea & Flood's fast seed-expansion generator.

use crate::Rng64;

/// SplitMix64 generator.
///
/// Period 2^64; every 64-bit seed gives a distinct full-period sequence.
/// Primarily used here to expand a single user seed into the larger state
/// of the other generators and to derive per-rank parameterized seeds, but
/// it is also a respectable generator in its own right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent, well-scrambled seed for stream `index`.
    ///
    /// Uses the golden-gamma increment to decorrelate nearby indices; the
    /// returned value is suitable as the seed of any generator in this
    /// crate.
    pub fn derive_stream_seed(master_seed: u64, index: u64) -> u64 {
        let mut g = SplitMix64::new(master_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn a few outputs so that even adversarial (seed, index) pairs
        // are fully mixed.
        g.next_u64();
        g.next_u64();
        g.next_u64()
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl qmc_ckpt::Checkpoint for SplitMix64 {
    fn kind(&self) -> &'static str {
        "rng.splitmix64"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.state);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.state = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 0 (from the public-domain reference
        // implementation by Sebastiano Vigna).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn distinct_seeds_distinct_sequences() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_stream_seeds_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096 {
            assert!(seen.insert(SplitMix64::derive_stream_seed(42, i)));
        }
    }

    #[test]
    fn clone_reproduces() {
        let mut a = SplitMix64::new(9);
        a.next_u64();
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
