//! Per-rank stream management.

use crate::{LaggedFibonacci55, Lcg64, Rng64, Xoshiro256StarStar};

/// Which generator family a [`StreamFactory`] hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamKind {
    /// LCG64 with block splitting by jump-ahead (2^40 draws per rank).
    Lcg,
    /// xoshiro256** with 2^128 jump separation (workspace default).
    #[default]
    Xoshiro,
    /// Lagged-Fibonacci r(55,24) with parameterized per-rank tables.
    LaggedFibonacci,
}

/// Factory producing one independent, reproducible generator per rank.
///
/// The invariant every parallel Monte Carlo code needs: for a fixed
/// `(seed, kind)`, rank `r` receives the same stream on every run and on
/// every machine, regardless of how many other ranks exist.
#[derive(Debug, Clone, Copy)]
pub struct StreamFactory {
    seed: u64,
    kind: StreamKind,
}

/// A generator handed out by [`StreamFactory`] — closed enum dispatch so
/// hot loops avoid virtual calls.
#[derive(Debug, Clone)]
pub enum StreamRng {
    /// Block-split LCG stream.
    Lcg(Lcg64),
    /// Jumped xoshiro stream.
    Xoshiro(Xoshiro256StarStar),
    /// Parameterized lagged-Fibonacci stream (boxed: its 55-word lag
    /// table would otherwise dominate the enum size).
    LaggedFibonacci(Box<LaggedFibonacci55>),
}

impl StreamFactory {
    /// Create a factory for a master seed with the default generator.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            kind: StreamKind::default(),
        }
    }

    /// Create a factory with an explicit generator family.
    pub fn with_kind(seed: u64, kind: StreamKind) -> Self {
        Self { seed, kind }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator family.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// The stream for `rank`.
    pub fn stream(&self, rank: usize) -> StreamRng {
        match self.kind {
            StreamKind::Lcg => StreamRng::Lcg(Lcg64::block_stream(self.seed, rank)),
            StreamKind::Xoshiro => {
                // For large rank counts, repeated polynomial jumps are
                // O(rank); re-key through SplitMix instead and jump once so
                // stream creation is O(1) while seeds stay decorrelated.
                let seed = crate::SplitMix64::derive_stream_seed(self.seed, rank as u64);
                let mut g = Xoshiro256StarStar::new(seed);
                g.jump();
                StreamRng::Xoshiro(g)
            }
            StreamKind::LaggedFibonacci => StreamRng::LaggedFibonacci(Box::new(
                LaggedFibonacci55::param_stream(self.seed, rank),
            )),
        }
    }
}

impl Rng64 for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            StreamRng::Lcg(g) => g.next_u64(),
            StreamRng::Xoshiro(g) => g.next_u64(),
            StreamRng::LaggedFibonacci(g) => g.next_u64(),
        }
    }
}

impl qmc_ckpt::Checkpoint for StreamRng {
    fn kind(&self) -> &'static str {
        "rng.stream"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        match self {
            StreamRng::Lcg(g) => {
                enc.u8(0);
                enc.state(g);
            }
            StreamRng::Xoshiro(g) => {
                enc.u8(1);
                enc.state(g);
            }
            StreamRng::LaggedFibonacci(g) => {
                enc.u8(2);
                enc.state(g.as_ref());
            }
        }
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        // The variant must match the value the factory already built —
        // resuming with a different `StreamKind` than the original run
        // would splice two unrelated streams.
        let tag = dec.u8()?;
        match (tag, &mut *self) {
            (0, StreamRng::Lcg(g)) => dec.load_state(g),
            (1, StreamRng::Xoshiro(g)) => dec.load_state(g),
            (2, StreamRng::LaggedFibonacci(g)) => dec.load_state(g.as_mut()),
            _ => Err(qmc_ckpt::CkptError::corrupt(format!(
                "stream rng variant tag {tag} does not match the configured generator kind"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_outputs(kind: StreamKind, rank: usize, n: usize) -> Vec<u64> {
        let mut g = StreamFactory::with_kind(2024, kind).stream(rank);
        (0..n).map(|_| g.next_u64()).collect()
    }

    #[test]
    fn streams_reproducible() {
        for kind in [
            StreamKind::Lcg,
            StreamKind::Xoshiro,
            StreamKind::LaggedFibonacci,
        ] {
            assert_eq!(first_outputs(kind, 3, 16), first_outputs(kind, 3, 16));
        }
    }

    #[test]
    fn streams_distinct_across_ranks() {
        for kind in [
            StreamKind::Lcg,
            StreamKind::Xoshiro,
            StreamKind::LaggedFibonacci,
        ] {
            let a = first_outputs(kind, 0, 16);
            let b = first_outputs(kind, 1, 16);
            assert_ne!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn stream_independent_of_total_rank_count() {
        // Rank r's stream must not depend on how many ranks exist — only
        // on (seed, kind, r). This is what makes P-varying runs comparable.
        let f = StreamFactory::new(7);
        let mut a = f.stream(5);
        let mut b = f.stream(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn many_streams_pairwise_distinct_first_output() {
        let f = StreamFactory::new(99);
        let mut outs = std::collections::HashSet::new();
        for r in 0..1024 {
            let mut g = f.stream(r);
            assert!(outs.insert(g.next_u64()), "collision at rank {r}");
        }
    }

    #[test]
    fn default_kind_is_xoshiro() {
        assert_eq!(StreamKind::default(), StreamKind::Xoshiro);
    }

    /// Save mid-stream, restore into a freshly constructed generator,
    /// and require the continuation to match the uninterrupted stream
    /// exactly. `make` must build the same pristine value both times.
    fn assert_resume_continues_stream<R, F>(make: F)
    where
        R: Rng64 + qmc_ckpt::Checkpoint,
        F: Fn() -> R,
    {
        let mut reference = make();
        let mut interrupted = make();
        for _ in 0..777 {
            assert_eq!(reference.next_u64(), interrupted.next_u64());
        }
        let snapshot = qmc_ckpt::save_state(&interrupted);
        let mut resumed = make();
        qmc_ckpt::load_state(&snapshot, &mut resumed).unwrap();
        for i in 0..2000 {
            assert_eq!(reference.next_u64(), resumed.next_u64(), "draw {i}");
        }
    }

    #[test]
    fn every_generator_resumes_bit_exactly() {
        assert_resume_continues_stream(|| crate::SplitMix64::new(21));
        assert_resume_continues_stream(|| Lcg64::new(21));
        assert_resume_continues_stream(|| Xoshiro256StarStar::new(21));
        assert_resume_continues_stream(|| LaggedFibonacci55::new(21));
        for kind in [
            StreamKind::Lcg,
            StreamKind::Xoshiro,
            StreamKind::LaggedFibonacci,
        ] {
            assert_resume_continues_stream(|| StreamFactory::with_kind(21, kind).stream(2));
        }
        // Buffered wrappers must carry the undrained buffer across the
        // checkpoint (777 % 256 != 0, so the buffer is mid-drain here).
        assert_resume_continues_stream(|| crate::Buffered::new(Xoshiro256StarStar::new(21)));
        assert_resume_continues_stream(|| crate::Buffered::new(Lcg64::new(21)));
    }
}
