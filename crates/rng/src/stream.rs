//! Per-rank stream management.

use crate::{LaggedFibonacci55, Lcg64, Rng64, Xoshiro256StarStar};

/// Which generator family a [`StreamFactory`] hands out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamKind {
    /// LCG64 with block splitting by jump-ahead (2^40 draws per rank).
    Lcg,
    /// xoshiro256** with 2^128 jump separation (workspace default).
    #[default]
    Xoshiro,
    /// Lagged-Fibonacci r(55,24) with parameterized per-rank tables.
    LaggedFibonacci,
}

/// Factory producing one independent, reproducible generator per rank.
///
/// The invariant every parallel Monte Carlo code needs: for a fixed
/// `(seed, kind)`, rank `r` receives the same stream on every run and on
/// every machine, regardless of how many other ranks exist.
#[derive(Debug, Clone, Copy)]
pub struct StreamFactory {
    seed: u64,
    kind: StreamKind,
}

/// A generator handed out by [`StreamFactory`] — closed enum dispatch so
/// hot loops avoid virtual calls.
#[derive(Debug, Clone)]
pub enum StreamRng {
    /// Block-split LCG stream.
    Lcg(Lcg64),
    /// Jumped xoshiro stream.
    Xoshiro(Xoshiro256StarStar),
    /// Parameterized lagged-Fibonacci stream (boxed: its 55-word lag
    /// table would otherwise dominate the enum size).
    LaggedFibonacci(Box<LaggedFibonacci55>),
}

impl StreamFactory {
    /// Create a factory for a master seed with the default generator.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            kind: StreamKind::default(),
        }
    }

    /// Create a factory with an explicit generator family.
    pub fn with_kind(seed: u64, kind: StreamKind) -> Self {
        Self { seed, kind }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator family.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// The stream for `rank`.
    pub fn stream(&self, rank: usize) -> StreamRng {
        match self.kind {
            StreamKind::Lcg => StreamRng::Lcg(Lcg64::block_stream(self.seed, rank)),
            StreamKind::Xoshiro => {
                // For large rank counts, repeated polynomial jumps are
                // O(rank); re-key through SplitMix instead and jump once so
                // stream creation is O(1) while seeds stay decorrelated.
                let seed = crate::SplitMix64::derive_stream_seed(self.seed, rank as u64);
                let mut g = Xoshiro256StarStar::new(seed);
                g.jump();
                StreamRng::Xoshiro(g)
            }
            StreamKind::LaggedFibonacci => StreamRng::LaggedFibonacci(Box::new(
                LaggedFibonacci55::param_stream(self.seed, rank),
            )),
        }
    }
}

impl Rng64 for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self {
            StreamRng::Lcg(g) => g.next_u64(),
            StreamRng::Xoshiro(g) => g.next_u64(),
            StreamRng::LaggedFibonacci(g) => g.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_outputs(kind: StreamKind, rank: usize, n: usize) -> Vec<u64> {
        let mut g = StreamFactory::with_kind(2024, kind).stream(rank);
        (0..n).map(|_| g.next_u64()).collect()
    }

    #[test]
    fn streams_reproducible() {
        for kind in [
            StreamKind::Lcg,
            StreamKind::Xoshiro,
            StreamKind::LaggedFibonacci,
        ] {
            assert_eq!(first_outputs(kind, 3, 16), first_outputs(kind, 3, 16));
        }
    }

    #[test]
    fn streams_distinct_across_ranks() {
        for kind in [
            StreamKind::Lcg,
            StreamKind::Xoshiro,
            StreamKind::LaggedFibonacci,
        ] {
            let a = first_outputs(kind, 0, 16);
            let b = first_outputs(kind, 1, 16);
            assert_ne!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn stream_independent_of_total_rank_count() {
        // Rank r's stream must not depend on how many ranks exist — only
        // on (seed, kind, r). This is what makes P-varying runs comparable.
        let f = StreamFactory::new(7);
        let mut a = f.stream(5);
        let mut b = f.stream(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn many_streams_pairwise_distinct_first_output() {
        let f = StreamFactory::new(99);
        let mut outs = std::collections::HashSet::new();
        for r in 0..1024 {
            let mut g = f.stream(r);
            assert!(outs.insert(g.next_u64()), "collision at rank {r}");
        }
    }

    #[test]
    fn default_kind_is_xoshiro() {
        assert_eq!(StreamKind::default(), StreamKind::Xoshiro);
    }
}
