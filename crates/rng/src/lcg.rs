//! 64-bit linear congruential generator with logarithmic-time jump-ahead.

use crate::Rng64;

/// Knuth's MMIX multiplier — a full-period multiplier mod 2^64.
const MULT: u64 = 6364136223846793005;
/// Any odd increment gives full period; this is the MMIX/PCG default.
const INC: u64 = 1442695040888963407;

/// Linear congruential generator, `s ← a·s + c (mod 2^64)`, with a strong
/// output scrambler and *O(log n)* jump-ahead.
///
/// The LCG recurrence is what makes massively parallel block splitting
/// cheap: `jump(n)` advances the stream by `n` steps in `O(log n)` work, so
/// rank `r` of `P` can be handed the sub-sequence starting at `r·2^40`
/// without generating the prefix. Raw LCG output has weak low bits, so the
/// state is passed through the SplitMix64 finalizer before being returned —
/// the *sequence structure* (and hence jump semantics) is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        // One step immediately decouples the first output from the raw seed.
        let mut g = Self { state: seed };
        g.step();
        g
    }

    /// Advance the underlying recurrence by one step.
    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULT).wrapping_add(INC);
    }

    /// Jump the stream forward by `n` steps in `O(log n)` time.
    ///
    /// Uses the standard divide-and-conquer evaluation of
    /// `s_n = a^n s + c (a^n − 1)/(a − 1) (mod 2^64)` (Brown, *Random number
    /// generation with arbitrary strides*): accumulate `(A, C)` such that
    /// the composite map is `s ↦ A·s + C`.
    pub fn jump(&mut self, mut n: u64) {
        let mut acc_mult: u64 = 1;
        let mut acc_plus: u64 = 0;
        let mut cur_mult = MULT;
        let mut cur_plus = INC;
        while n > 0 {
            if n & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_plus = acc_plus.wrapping_mul(cur_mult).wrapping_add(cur_plus);
            }
            cur_plus = cur_mult.wrapping_add(1).wrapping_mul(cur_plus);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            n >>= 1;
        }
        self.state = self.state.wrapping_mul(acc_mult).wrapping_add(acc_plus);
    }

    /// Construct the block-split stream for `rank`: the master sequence for
    /// `seed`, jumped ahead by `rank · 2^40` steps.
    ///
    /// 2^40 draws per rank is far beyond any single run's consumption, so
    /// blocks never overlap in practice.
    pub fn block_stream(seed: u64, rank: usize) -> Self {
        let mut g = Self::new(seed);
        // Jump in chunks to support rank·2^40 ≥ 2^64 gracefully (wraps are
        // harmless for the recurrence but we avoid the multiply overflow in
        // the argument computation).
        for _ in 0..rank {
            g.jump(1 << 40);
        }
        g
    }
}

impl Rng64 for Lcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        // SplitMix64 finalizer as output function.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        // State in a local for the batch; identical sequence to repeated
        // `next_u64`.
        let mut s = self.state;
        for slot in out.iter_mut() {
            s = s.wrapping_mul(MULT).wrapping_add(INC);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        self.state = s;
    }
}

impl qmc_ckpt::Checkpoint for Lcg64 {
    fn kind(&self) -> &'static str {
        "rng.lcg64"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.state);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.state = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_zero_is_identity() {
        let mut a = Lcg64::new(123);
        let b = a;
        a.jump(0);
        assert_eq!(a, b);
    }

    #[test]
    fn jump_one_equals_step() {
        let mut a = Lcg64::new(123);
        let mut b = a;
        a.jump(1);
        b.step();
        assert_eq!(a, b);
    }

    #[test]
    fn jump_composes() {
        let mut a = Lcg64::new(5);
        let mut b = a;
        a.jump(1000);
        a.jump(234);
        b.jump(1234);
        assert_eq!(a, b);
    }

    #[test]
    fn jump_matches_iterated_step() {
        // Scrambled seeds × a spread of jump distances (including the
        // power-of-two boundaries the O(log n) jump decomposes into).
        for s in 0..16u64 {
            let seed = crate::SplitMix64::new(s).next_u64();
            for n in [0u64, 1, 2, 3, 7, 63, 64, 65, 1000, 4999] {
                let mut jumped = Lcg64::new(seed);
                jumped.jump(n);
                let mut stepped = Lcg64::new(seed);
                for _ in 0..n {
                    stepped.step();
                }
                assert_eq!(jumped, stepped, "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn block_streams_disjoint_prefixes() {
        // The first outputs of neighbouring rank streams must differ —
        // a trivially necessary condition for block disjointness.
        for s in 0..64u64 {
            let seed = crate::SplitMix64::new(s).next_u64();
            let mut r0 = Lcg64::block_stream(seed, 0);
            let mut r1 = Lcg64::block_stream(seed, 1);
            assert_ne!(r0.next_u64(), r1.next_u64(), "seed {seed}");
        }
    }

    #[test]
    fn block_stream_is_master_sequence_suffix() {
        let seed = 777;
        let mut master = Lcg64::new(seed);
        master.jump(1 << 40);
        let mut rank1 = Lcg64::block_stream(seed, 1);
        for _ in 0..32 {
            assert_eq!(master.next_u64(), rank1.next_u64());
        }
    }

    #[test]
    fn full_period_multiplier_sanity() {
        // MULT ≡ 5 (mod 8) is the Hull–Dobell-style full-period condition
        // for power-of-two moduli (with odd increment).
        assert_eq!(MULT % 8, 5);
        assert_eq!(INC % 2, 1);
    }
}
