//! xoshiro256** — Blackman & Vigna's general-purpose generator.

use crate::{Rng64, SplitMix64};

/// xoshiro256** generator (period 2^256 − 1) with a 2^128-step jump for
/// stream separation.
///
/// This is the workspace's default high-quality generator: fast, passes
/// BigCrush, and `jump()` partitions the period into 2^128 non-overlapping
/// sub-sequences — one per parallel rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator, expanding the 64-bit seed through SplitMix64 as
    /// recommended by the authors (the all-zero state is unreachable).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Jump forward by 2^128 steps (the published jump polynomial).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    t[0] ^= self.s[0];
                    t[1] ^= self.s[1];
                    t[2] ^= self.s[2];
                    t[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = t;
    }

    /// Stream for `rank`: seed, then `rank` jumps of 2^128 steps each.
    pub fn block_stream(seed: u64, rank: usize) -> Self {
        let mut g = Self::new(seed);
        for _ in 0..rank {
            g.jump();
        }
        g
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        // Same recurrence with the state held in locals for the whole
        // batch (one load/store of the 4-word state per call, not per
        // draw). Output sequence identical to repeated `next_u64`.
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out.iter_mut() {
            *slot = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl qmc_ckpt::Checkpoint for Xoshiro256StarStar {
    fn kind(&self) -> &'static str {
        "rng.xoshiro256**"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        for &w in &self.s {
            enc.u64(w);
        }
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        for w in &mut self.s {
            *w = dec.u64()?;
        }
        if self.s == [0, 0, 0, 0] {
            return Err(qmc_ckpt::CkptError::corrupt(
                "xoshiro256** state is all-zero",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_known_state() {
        // With state {1,2,3,4}: hand-computed against the published
        // algorithm (output_n = rotl(s1·5, 7)·9 evaluated *before* the
        // state transition).
        //   out1: s1=2 → rotl(10,7)=1280 → 11520
        //   out2: after one transition s1=0 → 0
        //   out3: s1=262149 → rotl(1310745,7)·9 = 1509978240
        let mut g = Xoshiro256StarStar { s: [1, 2, 3, 4] };
        assert_eq!(g.next_u64(), 11520);
        assert_eq!(g.next_u64(), 0);
        assert_eq!(g.next_u64(), 1509978240);
    }

    #[test]
    fn jump_changes_state_and_decorrelates() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = a;
        b.jump();
        assert_ne!(a, b);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert!(va.iter().zip(&vb).all(|(x, y)| x != y));
    }

    #[test]
    fn block_streams_distinct() {
        let g0 = Xoshiro256StarStar::block_stream(7, 0);
        let g1 = Xoshiro256StarStar::block_stream(7, 1);
        let g2 = Xoshiro256StarStar::block_stream(7, 2);
        assert_ne!(g0, g1);
        assert_ne!(g1, g2);
        assert_ne!(g0, g2);
    }

    #[test]
    fn jump_is_deterministic() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(1);
        a.jump();
        b.jump();
        assert_eq!(a, b);
    }

    #[test]
    fn nonzero_state_from_any_seed() {
        for seed in [0u64, 1, u64::MAX] {
            let g = Xoshiro256StarStar::new(seed);
            assert_ne!(g.s, [0, 0, 0, 0]);
        }
    }
}
