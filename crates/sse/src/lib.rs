//! Stochastic series expansion (SSE) QMC for the spin-1/2 Heisenberg
//! antiferromagnet with deterministic operator-loop updates.
//!
//! SSE samples the Taylor expansion of the partition function,
//!
//! `Z = Σ_α Σ_{S_M} β^n (M−n)!/M! ⟨α| Π_p H_{a_p, b_p} |α⟩`,
//!
//! over fixed-length operator strings — no Trotter discretization, so SSE
//! is the *exact-β* cross-check for the world-line engine (experiment T5)
//! and the workhorse for the 2-D Heisenberg physics (experiment F5).
//!
//! The bond Hamiltonian is split the standard way (Sandvik):
//!
//! * diagonal: `H_1,b = J(¼ − Sᶻᵢ Sᶻⱼ)` — weight `J/2` on anti-parallel
//!   bonds, `0` on parallel ones,
//! * off-diagonal: `H_2,b = (J/2)(S⁺ᵢS⁻ⱼ + S⁻ᵢS⁺ⱼ)` — weight `J/2`.
//!
//! Because every non-zero vertex has weight `J/2`, the operator-loop
//! update is **deterministic and rejection-free**: a loop entering a
//! vertex leg always exits at the same-side partner leg (the only
//! Sᶻ-conserving, non-zero-weight choice), toggling
//! diagonal ↔ off-diagonal as it passes. Each loop is flipped with
//! probability ½. This is what makes SSE dramatically more ergodic than
//! local world-line moves (it changes winding and magnetization sectors
//! freely).
//!
//! Estimators: `⟨H⟩ = −⟨n⟩/β + N_b J/4`,
//! `C = ⟨n²⟩ − ⟨n⟩² − ⟨n⟩`, uniform χ from the conserved magnetization,
//! and the staggered structure factor from `|α⟩`.
//!
//! ```
//! use qmc_lattice::Square;
//! use qmc_rng::Xoshiro256StarStar;
//!
//! let lat = Square::new(4, 4);
//! let mut rng = Xoshiro256StarStar::new(3);
//! let mut sse = qmc_sse::Sse::new(&lat, 1.0, 2.0, &mut rng);
//! let series = sse.run(&mut rng, 500, 2_000);
//! let e: f64 = series.energy_samples().iter().sum::<f64>() / 2_000.0;
//! assert!(e < -0.3 && e > -0.75, "2-D Heisenberg energy bounds: {e}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qmc_lattice::Lattice;
use qmc_rng::Rng64;

/// Encoded operator: `-1` = identity, else `2·bond + (0 diag | 1 offdiag)`.
type Op = i64;

const IDENTITY: Op = -1;

/// SSE engine for the isotropic Heisenberg antiferromagnet (`J > 0`).
#[derive(Debug, Clone)]
pub struct Sse {
    n_sites: usize,
    bonds: Vec<(u32, u32)>,
    sublattice: Vec<u8>,
    j: f64,
    beta: f64,
    /// Current basis state |α⟩ (`true` = ↑).
    state: Vec<bool>,
    /// Operator string of length `cutoff`.
    ops: Vec<Op>,
    /// Non-identity operator count.
    n_ops: usize,
    /// `prob_insert[k] = β·N_b·(J/2)/k`, indexed by the free-slot count
    /// `k = M − n` — the diagonal-insert acceptance probability with the
    /// division taken out of the sweep loop.
    prob_insert: Vec<f64>,
    /// `prob_remove[k] = k/(β·N_b·(J/2))`, indexed by `k = M − n + 1`.
    prob_remove: Vec<f64>,
    // Scratch for link building / loop traversal.
    links: Vec<i64>,
    vfirst: Vec<i64>,
    vlast: Vec<i64>,
    flipped: Vec<bool>,
    visited: Vec<bool>,
    /// Basis state changed since the last successful checkpoint snapshot
    /// (conservatively true on construction; cleared only by
    /// [`qmc_ckpt::Checkpoint::mark_clean`]).
    state_dirty: bool,
    /// Operator string changed since the last successful snapshot.
    ops_dirty: bool,
}

/// Per-sweep measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SseMeasurement {
    /// Operator count `n` (energy estimator).
    pub n_ops: f64,
    /// Total magnetization `Σ Sᶻ`.
    pub magnetization: f64,
    /// Staggered magnetization `Σ (−1)^{sublattice} Sᶻ`.
    pub staggered: f64,
}

/// Time series plus derived estimators.
#[derive(Debug, Clone)]
pub struct SseSeries {
    /// β the run used.
    pub beta: f64,
    /// J.
    pub j: f64,
    /// Site count.
    pub n_sites: usize,
    /// Bond count.
    pub n_bonds: usize,
    /// Operator counts.
    pub n_ops: Vec<f64>,
    /// Magnetizations.
    pub magnetization: Vec<f64>,
    /// Staggered magnetizations.
    pub staggered: Vec<f64>,
    /// Accumulated chain correlation sums `⟨Sᶻ_0 Sᶻ_r⟩` (chains only;
    /// empty for 2-D lattices), r ∈ 0..=N/2.
    corr_sum: Vec<f64>,
    corr_count: u64,
    /// Rows captured by the last successful snapshot: completed row
    /// chunks below this mark are immutable and checkpoint as clean.
    clean_rows: usize,
}

impl SseSeries {
    /// Energy-per-site samples: `E/N = −n/(βN) + N_b J/(4N)`.
    pub fn energy_samples(&self) -> Vec<f64> {
        let shift = self.n_bonds as f64 * self.j / 4.0;
        self.n_ops
            .iter()
            .map(|&n| (-n / self.beta + shift) / self.n_sites as f64)
            .collect()
    }

    /// Specific heat per site via `C = (⟨n²⟩ − ⟨n⟩² − ⟨n⟩)/N` with a
    /// jackknife error.
    pub fn specific_heat(&self) -> (f64, f64) {
        let n2: Vec<f64> = self.n_ops.iter().map(|n| n * n).collect();
        let nn = self.n_sites as f64;
        let est = qmc_stats::jackknife_pair(
            &n2,
            &self.n_ops,
            32.min(self.n_ops.len() / 2).max(2),
            |a, b| (a - b * b - b) / nn,
        );
        (est.value, est.error)
    }

    /// Uniform susceptibility per site `χ = β(⟨M²⟩ − ⟨M⟩²)/N` with a
    /// jackknife error.
    pub fn susceptibility(&self) -> (f64, f64) {
        let m2: Vec<f64> = self.magnetization.iter().map(|m| m * m).collect();
        let beta = self.beta;
        let nn = self.n_sites as f64;
        let est = qmc_stats::jackknife_pair(
            &m2,
            &self.magnetization,
            32.min(self.magnetization.len() / 2).max(2),
            |a, b| beta * (a - b * b) / nn,
        );
        (est.value, est.error)
    }

    /// Mean chain correlation function `C(r)` (empty unless recorded).
    pub fn correlations(&self) -> Vec<f64> {
        if self.corr_count == 0 {
            return Vec::new();
        }
        self.corr_sum
            .iter()
            .map(|s| s / self.corr_count as f64)
            .collect()
    }

    /// Staggered structure factor per site `S(π)/N = ⟨m_s²⟩/N`.
    pub fn staggered_structure_factor(&self) -> f64 {
        let s2: f64 =
            self.staggered.iter().map(|s| s * s).sum::<f64>() / self.staggered.len().max(1) as f64;
        s2 / self.n_sites as f64
    }
}

impl Sse {
    /// Create an engine for the Heisenberg AFM on `lattice` at inverse
    /// temperature `beta` with coupling `j > 0`.
    pub fn new<L: Lattice, R: Rng64>(lattice: &L, j: f64, beta: f64, rng: &mut R) -> Self {
        assert!(j > 0.0, "SSE engine requires an antiferromagnetic J > 0");
        assert!(beta > 0.0, "β must be positive");
        let n_sites = lattice.num_sites();
        let bonds: Vec<(u32, u32)> = lattice.bonds().iter().map(|b| (b.a, b.b)).collect();
        let sublattice = (0..n_sites).map(|s| lattice.sublattice(s)).collect();
        // Random initial state (any works; loops equilibrate it fast).
        let state = (0..n_sites).map(|_| rng.bernoulli(0.5)).collect();
        let cutoff = 20.max(n_sites);
        let mut sse = Self {
            n_sites,
            bonds,
            sublattice,
            j,
            beta,
            state,
            ops: vec![IDENTITY; cutoff],
            n_ops: 0,
            prob_insert: Vec::new(),
            prob_remove: Vec::new(),
            links: Vec::new(),
            vfirst: Vec::new(),
            vlast: Vec::new(),
            flipped: Vec::new(),
            visited: Vec::new(),
            state_dirty: true,
            ops_dirty: true,
        };
        sse.rebuild_diag_tables();
        sse
    }

    /// (Re)build the per-free-slot-count diagonal probability tables up to
    /// the current cutoff. Each entry is computed with exactly the f64
    /// expression the sweep loop previously evaluated in place, so
    /// fixed-seed trajectories are bit-identical; called whenever the
    /// cutoff `M` changes.
    fn rebuild_diag_tables(&mut self) {
        let m = self.ops.len();
        let nb = self.bonds.len() as f64;
        let half_j = self.j / 2.0;
        self.prob_insert.clear();
        self.prob_insert
            .extend((0..=m).map(|k| self.beta * nb * half_j / k as f64));
        self.prob_remove.clear();
        self.prob_remove
            .extend((0..=m).map(|k| k as f64 / (self.beta * nb * half_j)));
    }

    /// Current string cutoff `M`.
    pub fn cutoff(&self) -> usize {
        self.ops.len()
    }

    /// Current operator count `n`.
    pub fn n_ops(&self) -> usize {
        self.n_ops
    }

    /// Diagonal update: insert/remove diagonal operators at fixed state
    /// propagation, flipping through off-diagonal vertices.
    #[qmc_hot::hot]
    fn diagonal_update<R: Rng64>(&mut self, rng: &mut R) {
        let m = self.ops.len();
        debug_assert!(self.prob_insert.len() == m + 1, "stale probability tables");
        for p in 0..m {
            match self.ops[p] {
                IDENTITY => {
                    let b = rng.index(self.bonds.len());
                    let (i, jj) = self.bonds[b];
                    if self.state[i as usize] != self.state[jj as usize] {
                        let prob = self.prob_insert[m - self.n_ops];
                        // lint: allow(hot-scalar-spin-loop) — reference SSE diagonal update (operator-string algorithm, not spin-parallel)
                        if rng.metropolis(prob) {
                            self.ops[p] = 2 * b as Op;
                            self.n_ops += 1;
                            self.ops_dirty = true;
                        }
                    }
                }
                op if op % 2 == 0 => {
                    let prob = self.prob_remove[m - self.n_ops + 1];
                    // lint: allow(hot-scalar-spin-loop) — reference SSE diagonal update (operator-string algorithm, not spin-parallel)
                    if rng.metropolis(prob) {
                        self.ops[p] = IDENTITY;
                        self.n_ops -= 1;
                        self.ops_dirty = true;
                    }
                }
                op => {
                    // Off-diagonal: propagate the state.
                    let b = (op / 2) as usize;
                    let (i, jj) = self.bonds[b];
                    self.state[i as usize] = !self.state[i as usize];
                    self.state[jj as usize] = !self.state[jj as usize];
                }
            }
        }
    }

    /// Build the doubly linked vertex-leg list.
    #[qmc_hot::hot]
    fn build_links(&mut self) {
        let m = self.ops.len();
        self.links.clear();
        self.links.resize(4 * m, -1);
        self.vfirst.clear();
        self.vfirst.resize(self.n_sites, -1);
        self.vlast.clear();
        self.vlast.resize(self.n_sites, -1);

        for p in 0..m {
            if self.ops[p] == IDENTITY {
                continue;
            }
            let b = (self.ops[p] / 2) as usize;
            let (i, jj) = self.bonds[b];
            for (k, site) in [(0usize, i as usize), (1, jj as usize)] {
                let in_leg = (4 * p + k) as i64;
                let out_leg = (4 * p + k + 2) as i64;
                if self.vlast[site] >= 0 {
                    self.links[self.vlast[site] as usize] = in_leg;
                    self.links[in_leg as usize] = self.vlast[site];
                } else {
                    self.vfirst[site] = in_leg;
                }
                self.vlast[site] = out_leg;
            }
        }
        for site in 0..self.n_sites {
            if self.vfirst[site] >= 0 {
                self.links[self.vlast[site] as usize] = self.vfirst[site];
                self.links[self.vfirst[site] as usize] = self.vlast[site];
            }
        }
    }

    /// Deterministic operator-loop update: construct every loop once,
    /// flip each with probability ½, then update `|α⟩` (free spins flip
    /// with probability ½).
    #[qmc_hot::hot]
    fn loop_update<R: Rng64>(&mut self, rng: &mut R) {
        let m = self.ops.len();
        self.visited.clear();
        self.visited.resize(4 * m, false);
        self.flipped.clear();
        self.flipped.resize(4 * m, false);

        for v0 in 0..4 * m {
            if self.links[v0] < 0 || self.visited[v0] {
                continue;
            }
            // lint: allow(hot-scalar-spin-loop) — loop-flip seed draw of the directed-loop update (branchy by construction)
            let flip = rng.bernoulli(0.5);
            let mut v = v0;
            let mut guard = 0usize;
            loop {
                guard += 1;
                assert!(
                    guard <= 8 * m + 8,
                    "operator loop failed to close (corrupt links)"
                );
                self.visited[v] = true;
                self.flipped[v] = flip;
                let p = v / 4;
                if flip {
                    self.ops[p] ^= 1; // diagonal ↔ off-diagonal
                    self.ops_dirty = true;
                }
                let exit = v ^ 1; // same-side partner leg
                self.visited[exit] = true;
                self.flipped[exit] = flip;
                v = self.links[exit] as usize;
                if v == v0 {
                    break;
                }
            }
        }

        for site in 0..self.n_sites {
            if self.vfirst[site] < 0 {
                // lint: allow(hot-scalar-spin-loop) — free-site flip: one draw per unconstrained site, no packed SSE path
                if rng.bernoulli(0.5) {
                    self.state[site] = !self.state[site];
                    self.state_dirty = true;
                }
            } else if self.flipped[self.vfirst[site] as usize] {
                self.state[site] = !self.state[site];
                self.state_dirty = true;
            }
        }
    }

    /// Grow the cutoff when the string gets crowded (thermalization aid;
    /// appending identities is exact because the weight is independent of
    /// identity placement). Public so stepwise checkpointed drivers can
    /// reproduce [`Sse::run`]'s thermalization schedule exactly.
    pub fn adjust_cutoff(&mut self) {
        let n = self.n_ops;
        let m = self.ops.len();
        if n + n / 3 > m {
            self.ops.resize(n + n / 3 + 10, IDENTITY);
            self.ops_dirty = true;
            self.rebuild_diag_tables();
        }
    }

    /// One Monte Carlo sweep (diagonal update + loop update).
    #[qmc_hot::hot]
    pub fn sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("sse.sweep");
        {
            let _s = qmc_obs::span("sse.diagonal");
            self.diagonal_update(rng);
        }
        {
            let _s = qmc_obs::span("sse.links");
            self.build_links();
        }
        {
            let _s = qmc_obs::span("sse.loop");
            self.loop_update(rng);
        }
        // Expansion-order trajectory (the SSE energy estimator is −⟨n⟩/β
        // up to a constant, so this histogram is the run's energy story).
        qmc_obs::hist_record("sse.n_ops", self.n_ops as u64);
    }

    /// Measure the current configuration.
    pub fn measure(&self) -> SseMeasurement {
        let mut mag = 0.0;
        let mut stag = 0.0;
        for s in 0..self.n_sites {
            let sz = if self.state[s] { 0.5 } else { -0.5 };
            mag += sz;
            stag += if self.sublattice[s] == 0 { sz } else { -sz };
        }
        SseMeasurement {
            n_ops: self.n_ops as f64,
            magnetization: mag,
            staggered: stag,
        }
    }

    /// Empty series matching this engine (the stepwise counterpart of
    /// [`Sse::run`]; checkpointed drivers build one, record into it sweep
    /// by sweep, and carry it across restarts).
    pub fn begin_series(&self, capacity: usize) -> SseSeries {
        SseSeries {
            beta: self.beta,
            j: self.j,
            n_sites: self.n_sites,
            n_bonds: self.bonds.len(),
            n_ops: Vec::with_capacity(capacity),
            magnetization: Vec::with_capacity(capacity),
            staggered: Vec::with_capacity(capacity),
            corr_sum: vec![0.0; self.n_sites / 2 + 1],
            corr_count: 0,
            clean_rows: 0,
        }
    }

    /// Measure the current configuration and record it into `series`
    /// (including the translation-averaged chain correlations — only
    /// meaningful when sites are indexed along a ring, i.e. the caller
    /// used a Chain; harmless extra numbers otherwise).
    pub fn record_measurement(&self, series: &mut SseSeries) {
        let meas = self.measure();
        qmc_obs::health_record("sse.n_ops", meas.n_ops);
        series.n_ops.push(meas.n_ops);
        series.magnetization.push(meas.magnetization);
        series.staggered.push(meas.staggered);
        for (r, slot) in series.corr_sum.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..self.n_sites {
                let a = if self.state[i] { 0.5 } else { -0.5 };
                let b = if self.state[(i + r) % self.n_sites] {
                    0.5
                } else {
                    -0.5
                };
                acc += a * b;
            }
            *slot += acc / self.n_sites as f64;
        }
        series.corr_count += 1;
    }

    /// Thermalize (`therm` sweeps with cutoff adaptation) then record
    /// `sweeps` measurements.
    pub fn run<R: Rng64>(&mut self, rng: &mut R, therm: usize, sweeps: usize) -> SseSeries {
        for _ in 0..therm {
            self.sweep(rng);
            self.adjust_cutoff();
        }
        let mut series = self.begin_series(sweeps);
        for _ in 0..sweeps {
            self.sweep(rng);
            self.record_measurement(&mut series);
        }
        series
    }

    /// Serialize the sampler state (basis state + operator string) into a
    /// self-contained byte checkpoint. Restoring with
    /// [`Sse::restore_checkpoint`] on an engine with the same lattice and
    /// couplings resumes the exact Markov chain (given the same RNG
    /// state).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.n_sites + 8 * self.ops.len());
        out.extend_from_slice(&(self.n_sites as u64).to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        out.extend(self.state.iter().map(|&s| s as u8));
        for &op in &self.ops {
            out.extend_from_slice(&op.to_le_bytes());
        }
        out
    }

    /// Restore a checkpoint produced by [`Sse::checkpoint`].
    ///
    /// Panics if the checkpoint does not match this engine's lattice or
    /// fails the internal consistency check.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) {
        assert!(bytes.len() >= 16, "checkpoint truncated");
        let n_sites = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) as usize;
        let n_ops_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        assert_eq!(
            n_sites, self.n_sites,
            "checkpoint is for a different lattice"
        );
        let expect = 16 + n_sites + 8 * n_ops_len;
        assert_eq!(bytes.len(), expect, "checkpoint length mismatch");
        self.state.clear();
        self.state
            .extend(bytes[16..16 + n_sites].iter().map(|&b| b != 0));
        self.ops.clear();
        for chunk in bytes[16 + n_sites..].chunks_exact(8) {
            self.ops
                .push(Op::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        self.n_ops = self.ops.iter().filter(|&&o| o != IDENTITY).count();
        self.state_dirty = true;
        self.ops_dirty = true;
        self.rebuild_diag_tables();
        self.check_consistency()
            .unwrap_or_else(|e| panic!("corrupt checkpoint: {e}"));
    }

    /// Validate internal consistency: propagating `|α⟩` through the whole
    /// string must return to `|α⟩`, and every operator must act on an
    /// anti-parallel bond at its insertion point. Test support.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut state = self.state.clone();
        for (p, &op) in self.ops.iter().enumerate() {
            if op == IDENTITY {
                continue;
            }
            let b = (op / 2) as usize;
            let (i, jj) = self.bonds[b];
            let (i, jj) = (i as usize, jj as usize);
            if state[i] == state[jj] {
                return Err(format!("operator {p} acts on a parallel bond"));
            }
            if op % 2 == 1 {
                state[i] = !state[i];
                state[jj] = !state[jj];
            }
        }
        if state != self.state {
            return Err("state does not close around the imaginary-time circle".into());
        }
        Ok(())
    }
}

impl qmc_ckpt::Checkpoint for Sse {
    fn kind(&self) -> &'static str {
        "engine.sse"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.n_sites as u64);
        enc.bools(&self.state);
        enc.i64s(&self.ops);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let n_sites = dec.u64()? as usize;
        if n_sites != self.n_sites {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "sse checkpoint is for {n_sites} sites, engine has {}",
                self.n_sites
            )));
        }
        let state = dec.bools()?;
        if state.len() != self.n_sites {
            return Err(qmc_ckpt::CkptError::corrupt(
                "sse basis state has the wrong length",
            ));
        }
        let ops = dec.i64s()?;
        for &op in &ops {
            if op != IDENTITY && (op < 0 || (op / 2) as usize >= self.bonds.len()) {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "sse operator code {op} out of range"
                )));
            }
        }
        self.state = state;
        self.ops = ops;
        self.n_ops = self.ops.iter().filter(|&&o| o != IDENTITY).count();
        self.state_dirty = true;
        self.ops_dirty = true;
        self.rebuild_diag_tables();
        self.check_consistency()
            .map_err(qmc_ckpt::CkptError::corrupt)
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut s = qmc_ckpt::DirtySections::new();
        // "spins" before "ops": restoring the operator string runs the
        // closure consistency check, which needs the basis state already
        // in place.
        s.push("spins", self.state_dirty);
        s.push("ops", self.ops_dirty);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        match name {
            "spins" => {
                enc.u64(self.n_sites as u64);
                enc.bools(&self.state);
            }
            "ops" => enc.i64s(&self.ops),
            _ => panic!("engine.sse has no checkpoint section {name:?}"),
        }
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        match name {
            "spins" => {
                let n_sites = dec.u64()? as usize;
                if n_sites != self.n_sites {
                    return Err(qmc_ckpt::CkptError::corrupt(format!(
                        "sse checkpoint is for {n_sites} sites, engine has {}",
                        self.n_sites
                    )));
                }
                let state = dec.bools()?;
                if state.len() != self.n_sites {
                    return Err(qmc_ckpt::CkptError::corrupt(
                        "sse basis state has the wrong length",
                    ));
                }
                self.state = state;
                Ok(())
            }
            "ops" => {
                let ops = dec.i64s()?;
                for &op in &ops {
                    if op != IDENTITY && (op < 0 || (op / 2) as usize >= self.bonds.len()) {
                        return Err(qmc_ckpt::CkptError::corrupt(format!(
                            "sse operator code {op} out of range"
                        )));
                    }
                }
                self.ops = ops;
                self.n_ops = self.ops.iter().filter(|&&o| o != IDENTITY).count();
                self.rebuild_diag_tables();
                self.check_consistency()
                    .map_err(qmc_ckpt::CkptError::corrupt)
            }
            _ => Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            }),
        }
    }

    fn mark_clean(&mut self) {
        self.state_dirty = false;
        self.ops_dirty = false;
    }
}

impl qmc_ckpt::Checkpoint for SseSeries {
    fn kind(&self) -> &'static str {
        "series.sse"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.f64(self.beta);
        enc.f64(self.j);
        enc.u64(self.n_sites as u64);
        enc.u64(self.n_bonds as u64);
        enc.f64s(&self.n_ops);
        enc.f64s(&self.magnetization);
        enc.f64s(&self.staggered);
        enc.f64s(&self.corr_sum);
        enc.u64(self.corr_count);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let beta = dec.f64()?;
        let j = dec.f64()?;
        let n_sites = dec.u64()? as usize;
        let n_bonds = dec.u64()? as usize;
        if n_sites != self.n_sites || n_bonds != self.n_bonds {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "sse series is for {n_sites} sites / {n_bonds} bonds, engine has {} / {}",
                self.n_sites, self.n_bonds
            )));
        }
        self.beta = beta;
        self.j = j;
        self.n_ops = dec.f64s()?;
        self.magnetization = dec.f64s()?;
        self.staggered = dec.f64s()?;
        let corr_sum = dec.f64s()?;
        if corr_sum.len() != self.corr_sum.len() {
            return Err(qmc_ckpt::CkptError::corrupt(
                "sse series correlation table has the wrong length",
            ));
        }
        self.corr_sum = corr_sum;
        self.corr_count = dec.u64()?;
        let n = self.n_ops.len();
        if self.magnetization.len() != n || self.staggered.len() != n {
            return Err(qmc_ckpt::CkptError::corrupt(
                "sse series columns have unequal lengths",
            ));
        }
        self.clean_rows = 0;
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        use qmc_ckpt::chunk;
        let mut s = qmc_ckpt::DirtySections::new();
        for k in 0..chunk::count(self.n_ops.len()) {
            s.push(chunk::name(k), chunk::is_dirty(k, self.clean_rows));
        }
        // Head last: it carries the total row count, so restoring it
        // validates that every chunk before it arrived intact.
        s.push("head", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        use qmc_ckpt::chunk;
        if name == "head" {
            enc.f64(self.beta);
            enc.f64(self.j);
            enc.u64(self.n_sites as u64);
            enc.u64(self.n_bonds as u64);
            enc.f64s(&self.corr_sum);
            enc.u64(self.corr_count);
            enc.u64(self.n_ops.len() as u64);
            return;
        }
        let k = chunk::parse(name)
            .unwrap_or_else(|| panic!("series.sse has no checkpoint section {name:?}"));
        enc.u64(k as u64);
        let r = chunk::range(k, self.n_ops.len());
        enc.f64s(&self.n_ops[r.clone()]);
        enc.f64s(&self.magnetization[r.clone()]);
        enc.f64s(&self.staggered[r]);
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        use qmc_ckpt::chunk;
        if name == "head" {
            let beta = dec.f64()?;
            let j = dec.f64()?;
            let n_sites = dec.u64()? as usize;
            let n_bonds = dec.u64()? as usize;
            if n_sites != self.n_sites || n_bonds != self.n_bonds {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "sse series is for {n_sites} sites / {n_bonds} bonds, engine has {} / {}",
                    self.n_sites, self.n_bonds
                )));
            }
            let corr_sum = dec.f64s()?;
            if corr_sum.len() != self.corr_sum.len() {
                return Err(qmc_ckpt::CkptError::corrupt(
                    "sse series correlation table has the wrong length",
                ));
            }
            self.beta = beta;
            self.j = j;
            self.corr_sum = corr_sum;
            self.corr_count = dec.u64()?;
            let n = dec.u64()? as usize;
            if n != self.n_ops.len() {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "sse series head claims {n} rows, chunks supplied {}",
                    self.n_ops.len()
                )));
            }
            return Ok(());
        }
        let Some(k) = chunk::parse(name) else {
            return Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            });
        };
        let stored = dec.u64()? as usize;
        if stored != k {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "sse series chunk {k} carries index {stored}"
            )));
        }
        if k == 0 {
            self.n_ops.clear();
            self.magnetization.clear();
            self.staggered.clear();
            self.clean_rows = 0;
        }
        if self.n_ops.len() != k * chunk::ROWS {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "sse series chunk {k} arrived at row {}",
                self.n_ops.len()
            )));
        }
        let n_ops = dec.f64s()?;
        let magnetization = dec.f64s()?;
        let staggered = dec.f64s()?;
        let n = n_ops.len();
        if n == 0 || n > chunk::ROWS || magnetization.len() != n || staggered.len() != n {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "sse series chunk {k} has malformed columns"
            )));
        }
        self.n_ops.extend_from_slice(&n_ops);
        self.magnetization.extend_from_slice(&magnetization);
        self.staggered.extend_from_slice(&staggered);
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.clean_rows = self.n_ops.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_ed::lanczos::{lanczos_ground_energy, XxzSectorOp};
    use qmc_ed::xxz::{full_spectrum, XxzParams};
    use qmc_lattice::{Chain, Square};
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    fn run_sse<L: Lattice>(lat: &L, beta: f64, seed: u64, sweeps: usize) -> SseSeries {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut sse = Sse::new(lat, 1.0, beta, &mut rng);
        sse.run(&mut rng, 3000, sweeps)
    }

    fn validate_chain(l: usize, beta: f64, seed: u64) {
        let lat = Chain::new(l);
        let series = run_sse(&lat, beta, seed, 30_000);
        let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));

        let e_samples = series.energy_samples();
        let be = BinningAnalysis::new(&e_samples, 16);
        let e_exact = spec.energy(beta) / l as f64;
        assert!(
            (be.mean - e_exact).abs() < 5.0 * be.error().max(2e-4),
            "L={l} β={beta}: E {} ± {} vs exact {e_exact}",
            be.mean,
            be.error()
        );

        let (chi, chi_err) = series.susceptibility();
        let chi_exact = spec.susceptibility(beta) / l as f64;
        assert!(
            (chi - chi_exact).abs() < 5.0 * chi_err.max(2e-4),
            "L={l} β={beta}: χ {chi} ± {chi_err} vs exact {chi_exact}"
        );
    }

    #[test]
    fn heisenberg_chain_l4_beta1() {
        validate_chain(4, 1.0, 1);
    }

    #[test]
    fn heisenberg_chain_l8_beta1() {
        validate_chain(8, 1.0, 2);
    }

    #[test]
    fn heisenberg_chain_l8_beta4_no_trotter_error() {
        // SSE has no Δτ bias — works at lower T than the world-line tests.
        validate_chain(8, 4.0, 3);
    }

    #[test]
    fn specific_heat_matches_ed() {
        let lat = Chain::new(8);
        let beta = 1.0;
        let series = run_sse(&lat, beta, 4, 60_000);
        let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        let c_exact = spec.heat_capacity(beta) / 8.0;
        let (c, c_err) = series.specific_heat();
        assert!(
            (c - c_exact).abs() < 6.0 * c_err.max(5e-4),
            "C {c} ± {c_err} vs exact {c_exact}"
        );
    }

    #[test]
    fn two_dimensional_4x4_ground_state_energy() {
        // β = 8 on 4×4: compare with the Lanczos ground state (thermal
        // corrections at βJ=8 are ≲ 1e-3 for this gapped finite system).
        let lat = Square::new(4, 4);
        let series = run_sse(&lat, 8.0, 5, 20_000);
        let e_samples = series.energy_samples();
        let be = BinningAnalysis::new(&e_samples, 16);
        let op = XxzSectorOp::new(&lat, XxzParams::heisenberg(1.0), 8);
        let e0 = lanczos_ground_energy(&op, 9, 300, 1e-10) / 16.0;
        assert!(
            (be.mean - e0).abs() < 5.0 * be.error().max(5e-4) + 2e-3,
            "E {} ± {} vs E0 {}",
            be.mean,
            be.error(),
            e0
        );
    }

    #[test]
    fn consistency_invariants_hold_through_sweeps() {
        let lat = Chain::new(8);
        let mut rng = Xoshiro256StarStar::new(6);
        let mut sse = Sse::new(&lat, 1.0, 2.0, &mut rng);
        for sweep in 0..200 {
            sse.sweep(&mut rng);
            sse.adjust_cutoff();
            sse.check_consistency()
                .unwrap_or_else(|e| panic!("sweep {sweep}: {e}"));
        }
    }

    #[test]
    fn operator_count_matches_exact_energy_relation() {
        // ⟨n⟩ = β(N_b J/4 − E_total) exactly (no Trotter error in SSE).
        let lat = Chain::new(8);
        let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        for (beta, seed) in [(1.0, 7u64), (2.0, 8)] {
            let series = run_sse(&lat, beta, seed, 20_000);
            let bn = BinningAnalysis::new(&series.n_ops, 16);
            let expect = beta * (8.0 * 0.25 - spec.energy(beta));
            assert!(
                (bn.mean - expect).abs() < 5.0 * bn.error().max(1e-3),
                "β={beta}: ⟨n⟩ {} ± {} vs exact {expect}",
                bn.mean,
                bn.error()
            );
        }
    }

    #[test]
    fn magnetization_sectors_visited() {
        let lat = Chain::new(8);
        let mut rng = Xoshiro256StarStar::new(9);
        let mut sse = Sse::new(&lat, 1.0, 0.5, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            sse.sweep(&mut rng);
            seen.insert((2.0 * sse.measure().magnetization) as i64);
        }
        assert!(seen.len() >= 4, "sectors seen: {seen:?}");
    }

    #[test]
    fn staggered_structure_factor_grows_at_low_t() {
        let lat = Square::new(4, 4);
        let hot = run_sse(&lat, 0.5, 10, 4000).staggered_structure_factor();
        let cold = run_sse(&lat, 6.0, 11, 4000).staggered_structure_factor();
        assert!(
            cold > 2.0 * hot,
            "AFM order should grow on cooling: hot {hot}, cold {cold}"
        );
    }

    #[test]
    fn cutoff_grows_then_stabilizes() {
        let lat = Chain::new(8);
        let mut rng = Xoshiro256StarStar::new(12);
        let mut sse = Sse::new(&lat, 1.0, 4.0, &mut rng);
        for _ in 0..500 {
            sse.sweep(&mut rng);
            sse.adjust_cutoff();
        }
        let m_after_therm = sse.cutoff();
        for _ in 0..500 {
            sse.sweep(&mut rng);
            sse.adjust_cutoff();
        }
        assert!(sse.cutoff() <= m_after_therm + m_after_therm / 2);
        assert!(sse.n_ops() > 0);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identically() {
        let lat = Chain::new(8);
        let mut rng = Xoshiro256StarStar::new(31);
        let mut a = Sse::new(&lat, 1.0, 1.5, &mut rng);
        for _ in 0..100 {
            a.sweep(&mut rng);
            a.adjust_cutoff();
        }
        let ckpt = a.checkpoint();
        let rng_saved = rng;

        // Continue A for 50 sweeps.
        let mut trace_a = Vec::new();
        for _ in 0..50 {
            a.sweep(&mut rng);
            trace_a.push(a.measure());
        }

        // Restore into a fresh engine and replay with the saved RNG.
        let mut rng_b = rng_saved;
        let mut dummy_rng = Xoshiro256StarStar::new(0);
        let mut b = Sse::new(&lat, 1.0, 1.5, &mut dummy_rng);
        b.restore_checkpoint(&ckpt);
        let mut trace_b = Vec::new();
        for _ in 0..50 {
            b.sweep(&mut rng_b);
            trace_b.push(b.measure());
        }
        assert_eq!(trace_a, trace_b, "restored chain must replay identically");
    }

    #[test]
    #[should_panic(expected = "different lattice")]
    fn checkpoint_rejects_wrong_lattice() {
        let mut rng = Xoshiro256StarStar::new(32);
        let a = Sse::new(&Chain::new(8), 1.0, 1.0, &mut rng);
        let mut b = Sse::new(&Chain::new(4), 1.0, 1.0, &mut rng);
        b.restore_checkpoint(&a.checkpoint());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn chain_correlations_match_ed() {
        let lat = Chain::new(8);
        let beta = 1.0;
        let series = run_sse(&lat, beta, 13, 30_000);
        let corr = series.correlations();
        let p = XxzParams::heisenberg(1.0);
        for r in 0..=4usize {
            let exact = qmc_ed::xxz::szsz_correlation(&lat, &p, beta, 0, r);
            assert!(
                (corr[r] - exact).abs() < 0.008,
                "C({r}) = {} vs exact {exact}",
                corr[r]
            );
        }
    }

    #[test]
    fn diag_prob_tables_match_direct_formula() {
        // Table entries must equal the previous in-loop expressions
        // bit-for-bit, including after cutoff growth.
        let lat = Chain::new(8);
        let mut rng = Xoshiro256StarStar::new(21);
        let mut sse = Sse::new(&lat, 1.3, 2.7, &mut rng);
        for _ in 0..300 {
            sse.sweep(&mut rng);
            sse.adjust_cutoff();
        }
        let m = sse.cutoff();
        let nb = sse.bonds.len() as f64;
        let half_j = sse.j / 2.0;
        assert_eq!(sse.prob_insert.len(), m + 1);
        for k in 1..=m {
            let insert = sse.beta * nb * half_j / k as f64;
            let remove = k as f64 / (sse.beta * nb * half_j);
            assert_eq!(sse.prob_insert[k].to_bits(), insert.to_bits(), "k={k}");
            assert_eq!(sse.prob_remove[k].to_bits(), remove.to_bits(), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "antiferromagnetic")]
    fn rejects_ferromagnetic_coupling() {
        let lat = Chain::new(4);
        let mut rng = Xoshiro256StarStar::new(0);
        Sse::new(&lat, -1.0, 1.0, &mut rng);
    }
}
