//! Model–implementation conformance for the DPOR-explored protocol
//! models (`qmc_verify::model`).
//!
//! Three claims, each checked here:
//!
//! 1. **Clean within budget** — the unmutated checkpoint-commit,
//!    drain-verdict, and scheduler models explore invariant-clean at
//!    the committed instance sizes, under the committed transition
//!    ceilings (a regression here means the protocol grew a real race
//!    or the model grew state the budget can't cover).
//! 2. **Mutants reproduce on the real code** — every seeded mutation's
//!    minimized counterexample schedule, replayed deterministically
//!    against the *real* implementation (`qmc_serve::Sched`,
//!    `qmc_ckpt::coord::write_coordinated_sections` over `ThreadComm`,
//!    blocking verdict receives over `ThreadComm`), exhibits the same
//!    violation the model checker reported. The models are not toys —
//!    they predict real behavior.
//! 3. **Bisimulation on the happy paths** — handwritten schedules step
//!    the scheduler model and the real `Sched` side by side, comparing
//!    an abstraction of the real state after every action.

use qmc_ckpt::{CkptStore, SectionPlan};
use qmc_comm::{run_threads, run_threads_with_timeout, Communicator};
use qmc_obs::Registry;
use qmc_serve::{JobKind, JobObservables, JobSpec, Sched, TenantQuota};
use qmc_verify::model::{
    CkptCommitModel, CkptMutation, DrainModel, DrainMutation, SchedModel, SchedMutation,
};
use qmc_verify::{explore, explore_naive, Budget, Outcome};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qmc-explore-{}-{label}-{n}", std::process::id()))
}

// ---------------------------------------------------------------------------
// 1. Unmutated protocols explore clean within the committed budget.
// ---------------------------------------------------------------------------

#[test]
fn ckpt_commit_explores_clean_within_committed_budget() {
    let m = CkptCommitModel::new(3, 2, 2);
    let out = explore(&m, Budget::with_faults(2));
    assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    assert!(
        out.stats().transitions <= 40_000,
        "committed ceiling blown: {} transitions",
        out.stats().transitions
    );
}

#[test]
fn drain_verdict_explores_clean_within_committed_budget() {
    let m = DrainModel::new(4, 3);
    let out = explore(&m, Budget::with_faults(0));
    assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    assert!(
        out.stats().transitions <= 6_000,
        "committed ceiling blown: {} transitions",
        out.stats().transitions
    );
}

#[test]
fn scheduler_explores_clean_within_committed_budget() {
    let m = SchedModel::new(2, 2, 2, 2);
    let out = explore(&m, Budget::with_faults(2));
    assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    assert!(
        out.stats().transitions <= 600_000,
        "committed ceiling blown: {} transitions",
        out.stats().transitions
    );
}

#[test]
fn dpor_agrees_with_naive_and_reduces_on_committed_instances() {
    fn check(name: &str, d: qmc_verify::ExploreStats, n: qmc_verify::ExploreStats) {
        assert!(
            d.transitions * 2 <= n.transitions,
            "{name}: DPOR {} vs naive {} — ratio under 2.0",
            d.transitions,
            n.transitions
        );
    }
    let m = CkptCommitModel::new(3, 1, 1);
    let (d, n) = (
        explore(&m, Budget::with_faults(0)),
        explore_naive(&m, Budget::with_faults(0)),
    );
    assert!(d.is_clean() && n.is_clean(), "ckpt(3,1,1) disagreed");
    check("ckpt(3,1,1)", d.stats(), n.stats());

    let m = DrainModel::new(3, 2);
    let (d, n) = (
        explore(&m, Budget::with_faults(0)),
        explore_naive(&m, Budget::with_faults(0)),
    );
    assert!(d.is_clean() && n.is_clean(), "drain(3,2) disagreed");
    check("drain(3,2)", d.stats(), n.stats());
}

// ---------------------------------------------------------------------------
// 2 + 3. Scheduler: bisimulation harness over the real `Sched`.
// ---------------------------------------------------------------------------

use qmc_verify::model::{JobSt, SchedAction, SchedState};

/// What the harness knows about one model job's real-world twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RealId {
    NotSubmitted,
    Rejected,
    Id(u64),
}

/// Steps the model and the real scheduler in lockstep and compares an
/// abstraction of the real state against the model state after every
/// action. The mutation glue flags replay a *model mutant's*
/// counterexample by making the harness drive the real code the way
/// the buggy code would.
struct Harness {
    model: SchedModel,
    state: SchedState,
    sched: Sched,
    real: Vec<RealId>,
    /// worker index → model job it is executing.
    workers: Vec<Option<usize>>,
    /// Glue for [`SchedMutation::ForgetRequeue`]: a killed worker frees
    /// itself without requeueing its job.
    forget_requeue: bool,
    /// Glue for [`SchedMutation::SkipQuota`]: admission runs with an
    /// unbounded quota.
    skip_quota: bool,
}

impl Harness {
    fn new(model: SchedModel) -> Self {
        let state = qmc_verify::Model::init(&model);
        let njobs = model.tenants * model.jobs_per_tenant;
        Harness {
            model,
            state,
            sched: Sched::default(),
            real: vec![RealId::NotSubmitted; njobs],
            workers: vec![None; model.workers],
            forget_requeue: matches!(model.mutation, Some(SchedMutation::ForgetRequeue)),
            skip_quota: matches!(model.mutation, Some(SchedMutation::SkipQuota)),
        }
    }

    fn model_job_of(&self, rid: u64) -> usize {
        self.real
            .iter()
            .position(|r| *r == RealId::Id(rid))
            .expect("dispatched id maps to a model job")
    }

    fn spec_for(&self, job: usize) -> JobSpec {
        let tenant = job / self.model.jobs_per_tenant;
        // Colliding instances share one sanitized name per tenant;
        // otherwise every job gets its own namespace.
        let name = if self.model.ns_collide {
            format!("shared-{tenant}")
        } else {
            format!("job-{job}")
        };
        let priority =
            u8::from(self.model.jobs_per_tenant > 1 && job % self.model.jobs_per_tenant == 1);
        JobSpec {
            tenant: format!("t{tenant}"),
            name,
            kind: JobKind::Tfim {
                lx: 4,
                ly: 1,
                j: 1.0,
                h: 2.0,
                m: 4,
                wolff: 1,
            },
            betas: vec![1.0],
            therm: 2,
            sweeps: 4,
            seed: job as u64,
            priority,
            ckpt_every: 0,
        }
    }

    /// Apply one model action to both worlds.
    fn step(&mut self, a: SchedAction) {
        match a {
            SchedAction::Submit { tenant } => {
                let t = tenant as usize;
                let job = (0..self.model.jobs_per_tenant)
                    .map(|j| t * self.model.jobs_per_tenant + j)
                    .find(|&id| self.real[id] == RealId::NotSubmitted)
                    .expect("a job left to submit");
                let quota = TenantQuota {
                    max_active: if self.skip_quota {
                        usize::MAX
                    } else {
                        self.model.quota
                    },
                };
                self.real[job] = match self.sched.submit(self.spec_for(job), &quota, &[]) {
                    Ok(rid) => RealId::Id(rid),
                    Err(_) => RealId::Rejected,
                };
            }
            SchedAction::Dispatch { worker } => {
                let rid = self.sched.pop_next().expect("model says a job is pending");
                self.workers[worker as usize] = Some(self.model_job_of(rid));
            }
            SchedAction::Complete { worker } => {
                let job = self.workers[worker as usize].take().expect("busy worker");
                let RealId::Id(rid) = self.real[job] else {
                    panic!("running job has a real id");
                };
                self.sched
                    .complete(rid, JobObservables::default(), &Registry::new());
            }
            SchedAction::Fail { worker } => {
                let job = self.workers[worker as usize].take().expect("busy worker");
                let RealId::Id(rid) = self.real[job] else {
                    panic!("running job has a real id");
                };
                self.sched.fail(rid, "injected failure".into());
            }
            SchedAction::Kill { worker } => {
                let job = self.workers[worker as usize].take().expect("busy worker");
                let RealId::Id(rid) = self.real[job] else {
                    panic!("running job has a real id");
                };
                if !self.forget_requeue {
                    self.sched.requeue(rid);
                }
                // ForgetRequeue glue: the worker frees itself, the
                // record stays Running — exactly the modeled bug.
            }
            SchedAction::Drain => self.sched.draining = true,
            SchedAction::DrainPark { worker } => {
                let job = self.workers[worker as usize].take().expect("busy worker");
                let RealId::Id(rid) = self.real[job] else {
                    panic!("running job has a real id");
                };
                self.sched.pause(rid);
            }
        }
        self.state = qmc_verify::Model::apply(&self.model, &self.state, &a);
    }

    /// The abstraction function: project the real scheduler onto the
    /// model's state space and compare.
    fn assert_conforms(&self, ctx: &str) {
        use qmc_serve::JobState;
        let (jobs, pending, workers, draining) = self.state.snapshot();
        assert_eq!(draining, self.sched.draining, "{ctx}: draining flag");
        assert_eq!(
            pending.len(),
            self.sched.pending_len(),
            "{ctx}: pending queue length"
        );
        for (job, st) in jobs.iter().enumerate() {
            let real = self.real[job];
            match (st, real) {
                (JobSt::NotSubmitted, RealId::NotSubmitted) => {}
                (JobSt::Rejected, RealId::Rejected) => {}
                (st, RealId::Id(rid)) => {
                    let rec = self.sched.job(rid).expect("live id keeps its record");
                    let want = match st {
                        JobSt::Queued => JobState::Queued,
                        JobSt::Running(_) => JobState::Running,
                        JobSt::Paused => JobState::Paused,
                        JobSt::Done => JobState::Done,
                        JobSt::Failed => JobState::Failed,
                        other => panic!("{ctx}: model job {job} is {other:?} but a real id exists"),
                    };
                    assert_eq!(rec.state, want, "{ctx}: job {job} state");
                }
                (st, real) => panic!("{ctx}: model job {job} is {st:?}, real twin is {real:?}"),
            }
        }
        for (w, slot) in workers.iter().enumerate() {
            assert_eq!(
                slot.map(|j| j as usize),
                self.workers[w],
                "{ctx}: worker {w} assignment"
            );
        }
    }

    fn replay(&mut self, schedule: &[SchedAction]) {
        for a in schedule {
            self.step(*a);
        }
    }
}

#[test]
fn sched_bisimulation_happy_path_priority_dispatch() {
    let m = SchedModel::new(1, 2, 1, 2);
    let mut h = Harness::new(m);
    let script = [
        SchedAction::Submit { tenant: 0 },
        SchedAction::Submit { tenant: 0 },
        // Job 1 carries priority 1, so the single worker takes it first.
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Complete { worker: 0 },
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Complete { worker: 0 },
    ];
    for (i, a) in script.iter().enumerate() {
        h.step(*a);
        h.assert_conforms(&format!("after action {i} ({a:?})"));
    }
    // The priority-1 job (model job 1) ran first.
    assert_eq!(h.workers, vec![None]);
}

#[test]
fn sched_bisimulation_kill_requeue_redispatch() {
    let m = SchedModel::new(1, 1, 1, 1);
    let mut h = Harness::new(m);
    let script = [
        SchedAction::Submit { tenant: 0 },
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Kill { worker: 0 },
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Complete { worker: 0 },
    ];
    for (i, a) in script.iter().enumerate() {
        h.step(*a);
        h.assert_conforms(&format!("after action {i} ({a:?})"));
    }
}

#[test]
fn sched_bisimulation_quota_and_ns_rejection() {
    // Quota: second submit while the first is active is rejected.
    let mut h = Harness::new(SchedModel::new(1, 2, 1, 1));
    h.step(SchedAction::Submit { tenant: 0 });
    h.assert_conforms("after first submit");
    h.step(SchedAction::Submit { tenant: 0 });
    h.assert_conforms("after over-quota submit");

    // Namespace: quota of 2 admits both by count, but the shared
    // namespace key rejects the second.
    let mut h = Harness::new(SchedModel::new(1, 2, 1, 2).with_ns_collision());
    h.step(SchedAction::Submit { tenant: 0 });
    h.step(SchedAction::Submit { tenant: 0 });
    h.assert_conforms("after colliding submit");
}

#[test]
fn sched_bisimulation_drain_park_and_fail() {
    let mut h = Harness::new(SchedModel::new(1, 1, 1, 1));
    let script = [
        SchedAction::Submit { tenant: 0 },
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Drain,
        SchedAction::DrainPark { worker: 0 },
    ];
    for (i, a) in script.iter().enumerate() {
        h.step(*a);
        h.assert_conforms(&format!("after action {i} ({a:?})"));
    }

    let mut h = Harness::new(SchedModel::new(1, 1, 1, 1));
    let script = [
        SchedAction::Submit { tenant: 0 },
        SchedAction::Dispatch { worker: 0 },
        SchedAction::Fail { worker: 0 },
    ];
    for (i, a) in script.iter().enumerate() {
        h.step(*a);
        h.assert_conforms(&format!("after action {i} ({a:?})"));
    }
}

#[test]
fn forget_requeue_counterexample_replays_on_real_sched() {
    let m = SchedModel::new(1, 1, 1, 1).mutated(SchedMutation::ForgetRequeue);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(1)) else {
        panic!("forgetting the requeue must violate");
    };
    assert!(ce.message.contains("lost"), "message: {}", ce.message);

    // Replay the minimized schedule against the real scheduler, with
    // the harness reproducing the buggy worker loop.
    let mut h = Harness::new(m);
    h.replay(&ce.schedule);
    // The violation is real: the record still says Running, but no
    // worker holds the job and nothing is pending — the job is lost.
    let RealId::Id(rid) = h.real[0] else {
        panic!("the job was submitted")
    };
    assert_eq!(
        h.sched.job(rid).expect("record kept").state,
        qmc_serve::JobState::Running,
        "record claims an executor"
    );
    assert!(h.workers.iter().all(Option::is_none), "no worker has it");
    assert_eq!(h.sched.pending_len(), 0, "and it is not queued either");
}

#[test]
fn skip_quota_counterexample_replays_on_real_sched() {
    let m = SchedModel::new(1, 2, 1, 1).mutated(SchedMutation::SkipQuota);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(0)) else {
        panic!("skipping the quota check must violate");
    };
    assert!(ce.message.contains("quota"), "message: {}", ce.message);

    let mut h = Harness::new(m);
    h.replay(&ce.schedule);
    // Both jobs were admitted even though the tenant's quota is 1.
    let active = (0..2)
        .filter(|&j| {
            matches!(h.real[j], RealId::Id(rid)
                if matches!(h.sched.job(rid).expect("kept").state,
                    qmc_serve::JobState::Queued | qmc_serve::JobState::Running))
        })
        .count();
    assert!(
        active > m.quota,
        "over-admission reproduced: {active} active"
    );

    // The unglued real scheduler rejects the same schedule's second
    // submit — the bug lives in the mutation, not the implementation.
    let mut h = Harness::new(SchedModel::new(1, 2, 1, 1));
    h.replay(&ce.schedule);
    h.assert_conforms("unmutated replay");
    assert_eq!(h.real[1], RealId::Rejected);
}

// ---------------------------------------------------------------------------
// 2. Checkpoint commit: counterexamples replay on the real store.
// ---------------------------------------------------------------------------

/// Two coordinated rounds against a real `CkptStore` over `ThreadComm`;
/// round 2's persist is forced to fail by squatting a directory on the
/// store's temp path for generation 2 (permission games don't work
/// under root, but `fs::write` onto a directory fails for anyone).
/// `gate` selects the correct commit-ack gate or the
/// [`CkptMutation::SkipAckGate`] bug (believe the generation landed
/// without consulting the broadcast ack). Returns each rank's believed
/// newest generation.
fn ckpt_two_rounds_with_failed_write(dir: &std::path::Path, gate: bool) -> Vec<u64> {
    let dir2 = dir.to_path_buf();
    let believed = run_threads(2, move |comm| {
        let rank = comm.rank();
        let store = CkptStore::new(&dir2, 4).expect("store");
        comm.barrier();
        let build = |_delta: bool| {
            vec![(
                "spins".to_string(),
                SectionPlan::Payload(vec![rank as u8; 8]),
            )]
        };
        let (_, committed) =
            qmc_ckpt::coord::write_coordinated_sections(comm, &store, 1, true, build);
        let mut believed = 0u64;
        if committed {
            believed = 1;
        }
        comm.barrier();
        believed
    });
    assert!(believed.iter().all(|&b| b == 1), "round 1 must commit");

    // Generation 2's temp write now hits a directory and fails.
    let squat = dir.join(".ckpt-0000000002.qckpt.tmp");
    std::fs::create_dir(&squat).expect("squat the generation-2 temp path");
    let dir2 = dir.to_path_buf();
    let believed = run_threads(2, move |comm| {
        let rank = comm.rank();
        let store = CkptStore::new(&dir2, 4).expect("store");
        comm.barrier();
        let build = |_delta: bool| {
            vec![(
                "spins".to_string(),
                SectionPlan::Payload(vec![rank as u8; 8]),
            )]
        };
        let (_, committed) =
            qmc_ckpt::coord::write_coordinated_sections(comm, &store, 2, true, build);
        // The gate: only a rank-consistent committed ack may advance
        // the believed generation (and, in the real driver, clear the
        // dirty flags the next delta builds on).
        if gate {
            if committed {
                2
            } else {
                1
            }
        } else {
            // SkipAckGate mutant: believe the write landed regardless.
            2
        }
    });
    std::fs::remove_dir(&squat).expect("unsquat");
    believed
}

/// [`CkptMutation::SkipAckGate`]'s minimized counterexample (write
/// fails, acks ignored) reproduces on the real coordinated writer: the
/// store holds only generation 1 while every rank believes 2 — the
/// exact divergence the model invariant reports. The gated control on
/// the same schedule keeps belief and store in agreement.
#[test]
fn skip_ack_gate_counterexample_replays_on_real_store() {
    let m = CkptCommitModel::new(2, 1, 1).mutated(CkptMutation::SkipAckGate);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(1)) else {
        panic!("mutant must violate the gate invariant");
    };
    assert!(
        ce.message.contains("believes generation"),
        "message: {}",
        ce.message
    );
    use qmc_verify::model::CkptAction;
    assert!(
        ce.schedule
            .iter()
            .any(|a| matches!(a, CkptAction::Write { ok: false, .. })),
        "the minimized schedule injects the failed write: {:#?}",
        ce.schedule
    );

    let dir = scratch("ackgate");
    let believed = ckpt_two_rounds_with_failed_write(&dir, false);
    let store = CkptStore::new(&dir, 4).expect("reopen");
    assert_eq!(store.generations(), vec![1], "only generation 1 landed");
    assert!(
        believed.iter().all(|&b| b == 2),
        "mutant: every rank believes generation 2 — the modeled violation, live: {believed:?}"
    );

    let dir = scratch("ackgate-control");
    let believed = ckpt_two_rounds_with_failed_write(&dir, true);
    let store = CkptStore::new(&dir, 4).expect("reopen");
    assert_eq!(store.generations(), vec![1]);
    assert!(
        believed.iter().all(|&b| b == 1),
        "gated control: belief tracks the store, live: {believed:?}"
    );
}

/// [`CkptMutation::LocalDecision`]'s counterexample (a rank plans delta
/// while rank 0 decided full) replays on the real writer: the divergent
/// plan reaches `write_plan`, which refuses a `Clean` section in a full
/// archive, so the generation never commits. The control honoring the
/// broadcast decision commits it.
#[test]
fn local_decision_counterexample_replays_on_real_store() {
    let m = CkptCommitModel::new(2, 2, 1).mutated(CkptMutation::LocalDecision);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(0)) else {
        panic!("mutant must violate decision agreement");
    };
    assert!(
        ce.message.contains("planned delta but rank 0 decided full"),
        "message: {}",
        ce.message
    );

    for honor_broadcast in [false, true] {
        let dir = scratch(if honor_broadcast {
            "decide-ok"
        } else {
            "decide"
        });
        let dir2 = dir.clone();
        let committed = run_threads(2, move |comm| {
            let rank = comm.rank();
            let store = CkptStore::new(&dir2, 4).expect("store");
            comm.barrier();
            let full = |_| {
                vec![(
                    "spins".to_string(),
                    SectionPlan::Payload(vec![rank as u8; 8]),
                )]
            };
            let (_, committed) =
                qmc_ckpt::coord::write_coordinated_sections(comm, &store, 1, true, full);
            assert!(committed, "round 1 commits everywhere");
            // Round 2: rank 0 decides FULL. The mutant rank ignores the
            // broadcast decision and plans from its *local* guess
            // ("nothing changed since my last write → send Clean").
            let plan = move |broadcast_delta: bool| {
                let delta_guess = if honor_broadcast || rank == 0 {
                    broadcast_delta
                } else {
                    true // LocalDecision bug: private guess, not the broadcast
                };
                let section = if delta_guess {
                    SectionPlan::Clean
                } else {
                    SectionPlan::Payload(vec![rank as u8; 8])
                };
                vec![("spins".to_string(), section)]
            };
            let (_, committed) =
                qmc_ckpt::coord::write_coordinated_sections(comm, &store, 2, true, plan);
            committed
        });
        let store = CkptStore::new(&dir, 4).expect("reopen");
        if honor_broadcast {
            assert!(committed.iter().all(|&c| c), "control commits round 2");
            assert_eq!(store.generations(), vec![1, 2]);
        } else {
            // The real writer detects the modeled divergence: a Clean
            // section in a full archive is refused, rank-consistently.
            assert!(
                committed.iter().all(|&c| !c),
                "mutant round 2 must not commit"
            );
            assert_eq!(store.generations(), vec![1]);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Drain verdict: counterexamples replay over a real ThreadComm.
// ---------------------------------------------------------------------------

/// [`DrainMutation::SkipFinalBroadcast`]'s counterexample is a
/// *deadlock* rendered as wait-for edges; replayed on a real
/// `ThreadComm` world it reproduces as the deadlock detector's
/// dead-peer diagnosis with the same edge (rank 1 waits on rank 0,
/// verdict tag, and the message can never arrive).
#[test]
fn skip_final_broadcast_counterexample_replays_as_real_deadlock() {
    use qmc_verify::model::TAG_VERDICT;
    let m = DrainModel::new(3, 2).mutated(DrainMutation::SkipFinalBroadcast);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(0)) else {
        panic!("skipping the stop broadcast must deadlock");
    };
    let Some(qmc_verify::Violation::Deadlock { cycle }) = &ce.deadlock else {
        panic!("expected wait-for edges, got {:?}", ce.deadlock);
    };
    assert!(cycle.iter().all(|e| e.src == 0 && e.tag == TAG_VERDICT));

    // Replay: rank 0 observes the raised flag and stops WITHOUT
    // broadcasting the verdict; every other rank blocks on the verdict
    // receive. The real dead-peer detector panics the world with the
    // same wait-for edge the model rendered.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_threads_with_timeout(3, Duration::from_secs(20), move |comm| {
            if comm.rank() == 0 {
                // Mutant: flag is up → stop silently, no broadcast.
            } else {
                let _ = comm.recv_bytes(0, TAG_VERDICT);
            }
        })
    }));
    std::panic::set_hook(hook);
    let err = crashed.expect_err("the silent stop must deadlock the world");
    let payload = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        payload.contains("waits on rank 0 (tag 0x20)")
            && payload.contains("the message can never arrive"),
        "dead-peer diagnosis must name the modeled edge, got: {payload}"
    );

    // Control: rank 0 broadcasts the stop verdict; every rank stops at
    // the same boundary.
    let stops = run_threads(3, |comm| {
        if comm.rank() == 0 {
            for dst in 1..comm.size() {
                comm.send_bytes(dst, TAG_VERDICT, &[1]);
            }
            0u64 // stopped at boundary 0
        } else {
            let verdict = comm.recv_bytes(0, TAG_VERDICT);
            assert_eq!(verdict, vec![1]);
            0u64
        }
    });
    assert!(stops.iter().all(|&s| s == 0), "all ranks stop together");
}

/// [`DrainMutation::LocalFlagRead`]'s counterexample (the environment
/// raises the flag between two ranks' boundary checks) replays on a
/// real shared `AtomicBool` over `ThreadComm`: the local-read world
/// splits — one rank stops, the other runs to completion — while the
/// broadcast-verdict control keeps the world agreed.
#[test]
fn local_flag_read_counterexample_replays_on_real_flag() {
    use qmc_verify::model::TAG_VERDICT;
    let m = DrainModel::new(2, 1).mutated(DrainMutation::LocalFlagRead);
    let Outcome::Violation(ce) = explore(&m, Budget::with_faults(0)) else {
        panic!("local flag reads must diverge");
    };
    assert_eq!(ce.schedule.len(), 3, "schedule: {:#?}", ce.schedule);

    // Encode each rank's run outcome as: -1 = finished the full run,
    // k >= 0 = stopped at boundary k. The token message sequences the
    // counterexample deterministically: rank 1 checks first (flag
    // down), then the flag rises, then rank 0 checks.
    const TOKEN: u32 = 0x21;
    let flag = Arc::new(AtomicBool::new(false));
    let f2 = Arc::clone(&flag);
    let outcomes = run_threads(2, move |comm| {
        if comm.rank() == 1 {
            // Mutant: read the flag locally at boundary 0.
            let stop = f2.load(Ordering::SeqCst);
            comm.send_bytes(0, TOKEN, &[1]);
            if stop {
                0i64
            } else {
                -1 // ran the single sweep to completion
            }
        } else {
            let _ = comm.recv_bytes(1, TOKEN);
            // The drain request lands between the two boundary checks.
            f2.store(true, Ordering::SeqCst);
            let stop = f2.load(Ordering::SeqCst);
            if stop {
                0i64
            } else {
                -1
            }
        }
    });
    assert_eq!(
        outcomes,
        vec![0, -1],
        "split world reproduced: rank 0 stopped at boundary 0, rank 1 finished"
    );

    // Control: rank 1 waits for the broadcast verdict instead of
    // reading the flag; the same environment timing no longer splits.
    let f2 = Arc::clone(&flag);
    f2.store(false, Ordering::SeqCst);
    let f3 = Arc::clone(&flag);
    let outcomes = run_threads(2, move |comm| {
        if comm.rank() == 1 {
            comm.send_bytes(0, TOKEN, &[1]);
            let verdict = comm.recv_bytes(0, TAG_VERDICT);
            if verdict == vec![1] {
                0i64
            } else {
                -1
            }
        } else {
            let _ = comm.recv_bytes(1, TOKEN);
            f3.store(true, Ordering::SeqCst);
            let stop = f3.load(Ordering::SeqCst);
            comm.send_bytes(1, TAG_VERDICT, &[u8::from(stop)]);
            if stop {
                0i64
            } else {
                -1
            }
        }
    });
    assert_eq!(
        outcomes,
        vec![0, 0],
        "broadcast verdict keeps the world agreed"
    );
}
