//! Pins the `repro serve-demo` fault drill: a multi-tenant job server
//! under injected worker deaths must lose zero jobs and resume every
//! killed or drained job bit-identically.

#[test]
fn serve_demo_loses_nothing_and_resumes_bit_identical() {
    let (report, ok) = qmc_bench::serve_demo::serve_demo(true);
    assert!(ok, "serve demo failed:\n{report}");
    assert!(
        report.contains("completed 240/240 (lost 0)"),
        "fleet must complete in full:\n{report}"
    );
    assert!(
        report.contains("bit-identical to direct runs: 240/240"),
        "every served result must match a direct run:\n{report}"
    );
    assert!(
        report.contains("killed jobs retried: 5/5"),
        "every injected kill must requeue and finish:\n{report}"
    );
    assert!(
        report.contains("tenant metric isolation: yes"),
        "tenant metrics must not leak:\n{report}"
    );
    assert!(
        report.contains("bit-identical resume yes"),
        "the PT kill must resume bit-identically:\n{report}"
    );
    assert!(
        report.contains("rode through in attempts 1"),
        "the PT kill must be absorbed inside one attempt, not requeued:\n{report}"
    );
    assert!(
        report.contains("restarted server resumed bit-identical yes"),
        "the drain/restart act must resume bit-identically:\n{report}"
    );
    assert!(report.contains("[PASS]"), "{report}");
}
