//! Observability integration tests.
//!
//! The contract of `qmc-obs` is that instrumentation never perturbs
//! physics: with a fixed seed, every engine must produce bit-identical
//! observable series and draw exactly as many random numbers with
//! observability fully on as with it off. The exported artifacts must
//! also obey their contracts: `METRICS_run.json` round-trips through the
//! bundled JSON parser with summed totals, and the Chrome trace keeps
//! per-rank timestamps sorted and `B`/`E` events balanced.

use qmc_comm::{run_threads, Communicator};
use qmc_lattice::{Chain, Square};
use qmc_obs::json::Json;
use qmc_obs::{
    analyze, chrome_trace_json, gather_ranks, metrics_json, ObsConfig, OnlineBinning, RunMeta,
    SegmentKind,
};
use qmc_rng::{Rng64, StreamFactory, Xoshiro256StarStar};
use qmc_sse::Sse;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{GenericParams, GenericWorldline, Worldline, WorldlineParams};

/// Counts raw draws while forwarding to the wrapped generator. Both the
/// scalar and the bulk path count, so buffered streams are covered too.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R> CountingRng<R> {
    fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }
}

impl<R: Rng64> Rng64 for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        self.draws += out.len() as u64;
        self.inner.fill_u64(out);
    }
}

/// Exact bit patterns of a float series (equality must be bitwise, not
/// approximate — instrumentation may not change even the last ulp).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Run `f` with a fully-enabled recorder installed on this thread, then
/// tear the recorder down again.
fn with_obs<T>(f: impl FnOnce() -> T) -> T {
    qmc_obs::init(0, &ObsConfig::new());
    let out = f();
    let _ = qmc_obs::finish();
    out
}

#[test]
fn serial_tfim_bit_identical_with_obs_on() {
    let run = || {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        let mut eng = SerialTfim::new(model);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
        let series = eng.run(&mut rng, 50, 200, 1);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.abs_m));
        b.extend(bits(&series.sigma_x));
        (b, rng.draws, eng.accepted(), eng.proposed())
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off.0, on.0, "observable series changed");
    assert_eq!(off.1, on.1, "RNG draw count changed");
    assert_eq!((off.2, off.3), (on.2, on.3), "acceptance counters changed");
    assert!(off.3 > 0, "sanity: proposals were made");
}

#[test]
fn worldline_bit_identical_with_obs_on() {
    let run = || {
        let mut wl = Worldline::new(WorldlineParams {
            l: 8,
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        });
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(11));
        let series = wl.run(&mut rng, 100, 400);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        (b, rng.draws, wl.local_accepted, wl.straight_accepted)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn generic_worldline_bit_identical_with_obs_on() {
    let run = || {
        let params = GenericParams {
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        };
        let mut wl = GenericWorldline::new(Square::new(4, 4), params);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(13));
        let series = wl.run(&mut rng, 100, 300);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        (b, rng.draws)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn sse_bit_identical_with_obs_on() {
    let run = || {
        let lat = Chain::new(8);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(17));
        let mut sse = Sse::new(&lat, 1.0, 2.0, &mut rng);
        let series = sse.run(&mut rng, 200, 500);
        let mut b = bits(&series.n_ops);
        b.extend(bits(&series.magnetization));
        (b, rng.draws)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn dist_tfim_bit_identical_with_obs_on_every_rank() {
    let run = |obs: bool| {
        let model = TfimModel {
            lx: 16,
            ly: 16,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        run_threads(4, move |comm| {
            if obs {
                qmc_obs::init(comm.rank(), &ObsConfig::new());
            }
            let mut eng = DistTfim::new(model, comm);
            let mut rng = CountingRng::new(StreamFactory::new(5).stream(comm.rank()));
            let series = eng.run(comm, &mut rng, 20, 60);
            if obs {
                let _ = qmc_obs::finish();
            }
            let mut b = bits(&series.energy);
            b.extend(bits(&series.abs_m));
            (b, rng.draws, eng.accepted(), eng.proposed())
        })
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "some rank's trajectory changed under obs");
}

#[test]
fn metrics_json_round_trips_through_parser() {
    qmc_obs::init(0, &ObsConfig::new());
    {
        let _s = qmc_obs::span("work");
        qmc_obs::counter_add("things", 3);
        qmc_obs::hist_record("sizes", 17);
    }
    let rank = qmc_obs::finish().expect("recorder installed");
    let meta = RunMeta::new("round-trip", "none", "serial", 1).param("l", 8);
    let text = metrics_json(&meta, std::slice::from_ref(&rank));

    let doc = Json::parse(&text).expect("exporter must emit valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("qmc-metrics/v1")
    );
    let run = doc.get("run").expect("run block");
    assert_eq!(run.get("name").and_then(Json::as_str), Some("round-trip"));
    assert_eq!(run.get("ranks").and_then(Json::as_f64), Some(1.0));
    assert_eq!(
        doc.get("totals")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get("things"))
            .and_then(Json::as_f64),
        Some(3.0)
    );
    let ranks = doc
        .get("ranks")
        .and_then(Json::as_arr)
        .expect("ranks array");
    assert_eq!(ranks.len(), 1);
    let r0 = &ranks[0];
    assert_eq!(
        r0.get("counters")
            .and_then(|c| c.get("things"))
            .and_then(Json::as_f64),
        Some(3.0)
    );
    let sizes = r0
        .get("histograms")
        .and_then(|h| h.get("sizes"))
        .expect("sizes histogram");
    assert_eq!(sizes.get("count").and_then(Json::as_f64), Some(1.0));
    assert_eq!(sizes.get("min").and_then(Json::as_f64), Some(17.0));
    assert_eq!(sizes.get("max").and_then(Json::as_f64), Some(17.0));
}

#[test]
fn chrome_trace_is_sorted_and_balanced_per_rank() {
    let cfg = ObsConfig::new();
    let mut results = run_threads(3, move |comm| {
        qmc_obs::init(comm.rank(), &cfg);
        for _ in 0..5 {
            let _outer = qmc_obs::span("outer");
            let _inner = qmc_obs::span("inner");
        }
        let mine = qmc_obs::finish().expect("recorder installed");
        gather_ranks(comm, &mine)
    });
    let ranks = results.swap_remove(0).expect("rank 0 gathers");
    assert_eq!(ranks.len(), 3);
    let trace = chrome_trace_json(&ranks);

    let doc = Json::parse(&trace).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // Group B/E events per tid; timestamps must be non-decreasing and
    // begin/end must pair up like a stack.
    let mut seen_tids = Vec::new();
    for tid in 0..3u64 {
        let evs: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(Json::as_f64) == Some(tid as f64)
                    && matches!(e.get("ph").and_then(Json::as_str), Some("B") | Some("E"))
            })
            .collect();
        assert_eq!(evs.len(), 20, "rank {tid}: 10 spans -> 20 events");
        let mut last_ts = f64::NEG_INFINITY;
        let mut depth: i64 = 0;
        for e in &evs {
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= last_ts, "rank {tid}: timestamps out of order");
            last_ts = ts;
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => depth += 1,
                Some("E") => depth -= 1,
                _ => unreachable!(),
            }
            assert!(depth >= 0, "rank {tid}: E before matching B");
        }
        assert_eq!(depth, 0, "rank {tid}: unbalanced B/E");
        seen_tids.push(tid);
    }
    assert_eq!(seen_tids, vec![0, 1, 2]);
}

// ---- causal tracing & critical-path analysis ---------------------------

#[test]
fn pt_bit_identical_traced_vs_bare() {
    // The analyze demo runs parallel tempering through TracingComm with
    // spans, comm tracing and per-rank recorders all live. Replaying the
    // exact configuration bare must land on the same trajectory to the
    // last bit: tracing is observation-only.
    let cfg = qmc_bench::analyze::demo_cfg();
    let mut bare = run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(qmc_bench::analyze::STREAM_SEED).stream(comm.rank());
        let (energies, _rates) =
            qmc_core::pt::run_pt_parallel_ckpt(comm, &cfg, &mut rng, None, |_c, _s| {});
        energies
    });
    let bare_energies = bare.swap_remove(0);
    let (_, traced_energies) = qmc_bench::analyze::run_traced(None);
    assert!(!bare_energies.is_empty());
    assert_eq!(
        bits(&bare_energies),
        bits(&traced_energies),
        "TracingComm perturbed the PT trajectory"
    );
}

#[test]
fn serial_tfim_bit_identical_with_health_on() {
    // Same contract as `serial_tfim_bit_identical_with_obs_on`, but with
    // the online convergence-health layer enabled (silently: every=0
    // suppresses the periodic stderr reports while the monitors stream).
    let run = || {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        let mut eng = SerialTfim::new(model);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(23));
        let series = eng.run(&mut rng, 50, 200, 1);
        (bits(&series.energy), rng.draws)
    };
    let off = run();
    qmc_obs::init(0, &ObsConfig::new().with_health_every(0));
    let on = run();
    let rank = qmc_obs::finish().expect("recorder installed");
    assert_eq!(off, on, "health monitoring changed the trajectory");
    // The engine actually fed the monitor: one snapshot per observable.
    assert!(
        rank.health.iter().any(|h| h.name == "energy"),
        "no energy health snapshot was recorded"
    );
}

#[test]
fn online_binning_matches_offline_within_one_percent() {
    // The streaming level-doubling analysis behind the health monitor
    // must agree with the offline `qmc_stats::BinningAnalysis` it
    // mirrors: same plateau rule, same min-bins cutoff, same series.
    let mut rng = Xoshiro256StarStar::new(29);
    let mut series = Vec::with_capacity(1 << 14);
    let mut x = 0.0f64;
    for _ in 0..1 << 14 {
        // AR(1) with φ = 0.8: τ_int well above the uncorrelated 0.5, so
        // the comparison exercises the plateau search, not just σ/√N.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x = 0.8 * x + (u - 0.5);
        series.push(x);
    }
    let mut online = OnlineBinning::new(16);
    for &v in &series {
        online.push(v);
    }
    let offline = qmc_stats::BinningAnalysis::new(&series, 16);
    assert!(offline.tau_int() > 1.0, "series not correlated enough");
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs();
    assert!(
        rel(online.error(), offline.error()) < 0.01,
        "error: online {} vs offline {}",
        online.error(),
        offline.error()
    );
    assert!(
        rel(online.tau_int(), offline.tau_int()) < 0.01,
        "tau_int: online {} vs offline {}",
        online.tau_int(),
        offline.tau_int()
    );
}

#[test]
fn analyze_trace_is_perfetto_valid_with_matched_flows() {
    // The 4-rank traced PT demo is the trace `repro analyze` ships to
    // Perfetto: per-track timestamps sorted, B/E balanced, and every
    // flow id appearing exactly once as a start ("s") and once as a
    // finish ("f") on different tracks.
    let (ranks, _) = qmc_bench::analyze::run_traced(None);
    let trace = chrome_trace_json(&ranks);
    let doc = Json::parse(&trace).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    for tid in 0..4u64 {
        let mut last_ts = f64::NEG_INFINITY;
        let mut depth: i64 = 0;
        for e in events.iter().filter(|e| {
            e.get("tid").and_then(Json::as_f64) == Some(tid as f64)
                && matches!(e.get("ph").and_then(Json::as_str), Some("B") | Some("E"))
        }) {
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= last_ts, "rank {tid}: timestamps out of order");
            last_ts = ts;
            depth += match e.get("ph").and_then(Json::as_str) {
                Some("B") => 1,
                _ => -1,
            };
            assert!(depth >= 0, "rank {tid}: E before matching B");
        }
        assert_eq!(depth, 0, "rank {tid}: unbalanced B/E");
    }
    // Flow arrows: collect (id -> [s-tid, f-tid]) and demand clean pairs.
    let mut starts = std::collections::BTreeMap::new();
    let mut finishes = std::collections::BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str);
        if !matches!(ph, Some("s") | Some("f")) {
            continue;
        }
        let id = e.get("id").and_then(Json::as_f64).expect("flow id") as u64;
        let tid = e.get("tid").and_then(Json::as_f64).expect("flow tid") as u64;
        let table = if ph == Some("s") {
            &mut starts
        } else {
            &mut finishes
        };
        assert!(
            table.insert(id, tid).is_none(),
            "flow id {id} duplicated for phase {ph:?}"
        );
    }
    assert!(!starts.is_empty(), "traced PT run produced no flow arrows");
    assert_eq!(
        starts.keys().collect::<Vec<_>>(),
        finishes.keys().collect::<Vec<_>>(),
        "unpaired flow ids"
    );
    for (id, s_tid) in &starts {
        assert_ne!(
            s_tid, &finishes[id],
            "flow {id}: message arrow starts and ends on the same rank"
        );
    }
}

#[test]
fn critical_path_span_ids_exist_in_recorded_spans() {
    // Every compute segment the critical path names must point at a span
    // that is actually in the trace (span id 0 = outside any span).
    let (ranks, _) = qmc_bench::analyze::run_traced(None);
    let a = analyze(&ranks).expect("clean analysis");
    let mut checked = 0;
    for seg in &a.critical_path {
        if seg.kind != SegmentKind::Compute || seg.span_id == 0 {
            continue;
        }
        let rank = ranks
            .iter()
            .find(|r| r.rank == seg.rank)
            .expect("segment names a traced rank");
        assert!(
            rank.spans.iter().any(|s| s.id == seg.span_id),
            "critical-path span {} missing from rank {}'s spans",
            seg.span_id,
            seg.rank
        );
        checked += 1;
    }
    assert!(checked > 0, "critical path named no spans at all");
}

#[test]
fn slow_rank_is_dragged_onto_critical_path() {
    // A 2 ms per-sweep stall on rank 3 dwarfs the real work (the whole
    // unstalled run is under a millisecond), so the analysis must name
    // rank 3 both as the straggler and as the rank dominating the
    // critical path's compute time.
    let (ranks, _) = qmc_bench::analyze::run_traced(Some(3));
    let a = analyze(&ranks).expect("clean analysis");
    assert_eq!(a.straggler, 3, "stalled rank not flagged as straggler");
    assert_eq!(
        a.path_dominant_rank(),
        3,
        "critical path did not move onto the stalled rank"
    );
    assert!(
        a.imbalance > 1.5,
        "stall should show as load imbalance, got {:.2}x",
        a.imbalance
    );
}
