//! Observability integration tests.
//!
//! The contract of `qmc-obs` is that instrumentation never perturbs
//! physics: with a fixed seed, every engine must produce bit-identical
//! observable series and draw exactly as many random numbers with
//! observability fully on as with it off. The exported artifacts must
//! also obey their contracts: `METRICS_run.json` round-trips through the
//! bundled JSON parser with summed totals, and the Chrome trace keeps
//! per-rank timestamps sorted and `B`/`E` events balanced.

use qmc_comm::{run_threads, Communicator};
use qmc_lattice::{Chain, Square};
use qmc_obs::json::Json;
use qmc_obs::{chrome_trace_json, gather_ranks, metrics_json, ObsConfig, RunMeta};
use qmc_rng::{Rng64, StreamFactory, Xoshiro256StarStar};
use qmc_sse::Sse;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{GenericParams, GenericWorldline, Worldline, WorldlineParams};

/// Counts raw draws while forwarding to the wrapped generator. Both the
/// scalar and the bulk path count, so buffered streams are covered too.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R> CountingRng<R> {
    fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }
}

impl<R: Rng64> Rng64 for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        self.draws += out.len() as u64;
        self.inner.fill_u64(out);
    }
}

/// Exact bit patterns of a float series (equality must be bitwise, not
/// approximate — instrumentation may not change even the last ulp).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Run `f` with a fully-enabled recorder installed on this thread, then
/// tear the recorder down again.
fn with_obs<T>(f: impl FnOnce() -> T) -> T {
    qmc_obs::init(0, &ObsConfig::new());
    let out = f();
    let _ = qmc_obs::finish();
    out
}

#[test]
fn serial_tfim_bit_identical_with_obs_on() {
    let run = || {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        let mut eng = SerialTfim::new(model);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
        let series = eng.run(&mut rng, 50, 200, 1);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.abs_m));
        b.extend(bits(&series.sigma_x));
        (b, rng.draws, eng.accepted(), eng.proposed())
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off.0, on.0, "observable series changed");
    assert_eq!(off.1, on.1, "RNG draw count changed");
    assert_eq!((off.2, off.3), (on.2, on.3), "acceptance counters changed");
    assert!(off.3 > 0, "sanity: proposals were made");
}

#[test]
fn worldline_bit_identical_with_obs_on() {
    let run = || {
        let mut wl = Worldline::new(WorldlineParams {
            l: 8,
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        });
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(11));
        let series = wl.run(&mut rng, 100, 400);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        (b, rng.draws, wl.local_accepted, wl.straight_accepted)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn generic_worldline_bit_identical_with_obs_on() {
    let run = || {
        let params = GenericParams {
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        };
        let mut wl = GenericWorldline::new(Square::new(4, 4), params);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(13));
        let series = wl.run(&mut rng, 100, 300);
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        (b, rng.draws)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn sse_bit_identical_with_obs_on() {
    let run = || {
        let lat = Chain::new(8);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(17));
        let mut sse = Sse::new(&lat, 1.0, 2.0, &mut rng);
        let series = sse.run(&mut rng, 200, 500);
        let mut b = bits(&series.n_ops);
        b.extend(bits(&series.magnetization));
        (b, rng.draws)
    };
    let off = run();
    let on = with_obs(run);
    assert_eq!(off, on);
}

#[test]
fn dist_tfim_bit_identical_with_obs_on_every_rank() {
    let run = |obs: bool| {
        let model = TfimModel {
            lx: 16,
            ly: 16,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        run_threads(4, move |comm| {
            if obs {
                qmc_obs::init(comm.rank(), &ObsConfig::new());
            }
            let mut eng = DistTfim::new(model, comm);
            let mut rng = CountingRng::new(StreamFactory::new(5).stream(comm.rank()));
            let series = eng.run(comm, &mut rng, 20, 60);
            if obs {
                let _ = qmc_obs::finish();
            }
            let mut b = bits(&series.energy);
            b.extend(bits(&series.abs_m));
            (b, rng.draws, eng.accepted(), eng.proposed())
        })
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off, on, "some rank's trajectory changed under obs");
}

#[test]
fn metrics_json_round_trips_through_parser() {
    qmc_obs::init(0, &ObsConfig::new());
    {
        let _s = qmc_obs::span("work");
        qmc_obs::counter_add("things", 3);
        qmc_obs::hist_record("sizes", 17);
    }
    let rank = qmc_obs::finish().expect("recorder installed");
    let meta = RunMeta::new("round-trip", "none", "serial", 1).param("l", 8);
    let text = metrics_json(&meta, std::slice::from_ref(&rank));

    let doc = Json::parse(&text).expect("exporter must emit valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("qmc-metrics/v1")
    );
    let run = doc.get("run").expect("run block");
    assert_eq!(run.get("name").and_then(Json::as_str), Some("round-trip"));
    assert_eq!(run.get("ranks").and_then(Json::as_f64), Some(1.0));
    assert_eq!(
        doc.get("totals")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.get("things"))
            .and_then(Json::as_f64),
        Some(3.0)
    );
    let ranks = doc
        .get("ranks")
        .and_then(Json::as_arr)
        .expect("ranks array");
    assert_eq!(ranks.len(), 1);
    let r0 = &ranks[0];
    assert_eq!(
        r0.get("counters")
            .and_then(|c| c.get("things"))
            .and_then(Json::as_f64),
        Some(3.0)
    );
    let sizes = r0
        .get("histograms")
        .and_then(|h| h.get("sizes"))
        .expect("sizes histogram");
    assert_eq!(sizes.get("count").and_then(Json::as_f64), Some(1.0));
    assert_eq!(sizes.get("min").and_then(Json::as_f64), Some(17.0));
    assert_eq!(sizes.get("max").and_then(Json::as_f64), Some(17.0));
}

#[test]
fn chrome_trace_is_sorted_and_balanced_per_rank() {
    let cfg = ObsConfig::new();
    let mut results = run_threads(3, move |comm| {
        qmc_obs::init(comm.rank(), &cfg);
        for _ in 0..5 {
            let _outer = qmc_obs::span("outer");
            let _inner = qmc_obs::span("inner");
        }
        let mine = qmc_obs::finish().expect("recorder installed");
        gather_ranks(comm, &mine)
    });
    let ranks = results.swap_remove(0).expect("rank 0 gathers");
    assert_eq!(ranks.len(), 3);
    let trace = chrome_trace_json(&ranks);

    let doc = Json::parse(&trace).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    // Group B/E events per tid; timestamps must be non-decreasing and
    // begin/end must pair up like a stack.
    let mut seen_tids = Vec::new();
    for tid in 0..3u64 {
        let evs: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(Json::as_f64) == Some(tid as f64)
                    && matches!(e.get("ph").and_then(Json::as_str), Some("B") | Some("E"))
            })
            .collect();
        assert_eq!(evs.len(), 20, "rank {tid}: 10 spans -> 20 events");
        let mut last_ts = f64::NEG_INFINITY;
        let mut depth: i64 = 0;
        for e in &evs {
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= last_ts, "rank {tid}: timestamps out of order");
            last_ts = ts;
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => depth += 1,
                Some("E") => depth -= 1,
                _ => unreachable!(),
            }
            assert!(depth >= 0, "rank {tid}: E before matching B");
        }
        assert_eq!(depth, 0, "rank {tid}: unbalanced B/E");
        seen_tids.push(tid);
    }
    assert_eq!(seen_tids, vec![0, 1, 2]);
}
