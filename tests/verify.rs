//! Protocol-verification integration: real engine traffic through the
//! `qmc-verify` recording layer and checker.
//!
//! These pin the acceptance contract: a production 4-rank
//! parallel-tempering run verifies deadlock-free with messages actually
//! matched, a crossed-recv program is flagged with the exact wait-for
//! cycle, and recording is opt-in (plain runs bypass it entirely).

use qmc_comm::Communicator;
use qmc_core::pt::{run_pt_parallel, PtConfig};
use qmc_rng::StreamFactory;
use qmc_verify::{check, record_threads, Event, Violation, WorldTrace};

fn pt_config() -> PtConfig {
    PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 4,
        betas: vec![0.5, 1.0, 1.5, 2.0],
        therm: 10,
        sweeps: 30,
        exchange_every: 5,
        seed: 7,
    }
}

#[test]
fn four_rank_pt_run_verifies_deadlock_free() {
    let cfg = pt_config();
    let (results, trace) = record_threads(4, move |comm| {
        let mut rng = StreamFactory::new(41).stream(comm.rank());
        run_pt_parallel(comm, &cfg, &mut rng)
    });
    assert_eq!(results.len(), 4);

    let report = check(&trace).expect("PT traffic must verify deadlock-free");
    assert_eq!(report.ranks, 4);
    assert!(
        report.user_messages > 0,
        "PT exchanges user messages (log-weights + spin payloads)"
    );
    assert!(
        report.internal_messages > 0,
        "PT runs collectives, which decompose into internal messages"
    );
    assert!(report.collectives > 0, "allreduces must be recorded");
}

#[test]
fn recording_does_not_perturb_the_physics() {
    // The recording wrapper must be a pure observer: the PT trajectory
    // through it is bit-identical to the bare run.
    let cfg = pt_config();
    let cfg2 = cfg.clone();
    let (recorded, _trace) = record_threads(4, move |comm| {
        let mut rng = StreamFactory::new(41).stream(comm.rank());
        run_pt_parallel(comm, &cfg, &mut rng)
    });
    let bare = qmc_comm::run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(41).stream(comm.rank());
        run_pt_parallel(comm, &cfg2, &mut rng)
    });
    for rank in 0..4 {
        assert_eq!(
            recorded[rank].0, bare[rank].0,
            "rank {rank}: energy series must be bit-identical"
        );
        assert_eq!(recorded[rank].1, bare[rank].1, "rank {rank}: acceptances");
    }
}

#[test]
fn crossed_recv_trace_is_flagged_with_the_exact_cycle() {
    let recv = |src| Event::Recv {
        src,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    let send = |dst| Event::Send {
        dst,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    let trace = WorldTrace {
        ranks: vec![vec![recv(1), send(1)], vec![recv(0), send(0)]],
    };
    let violations = check(&trace).expect_err("crossed recvs must be flagged");
    let deadlock = violations
        .iter()
        .find(|v| matches!(v, Violation::Deadlock { .. }))
        .expect("a Deadlock violation must be present");
    assert_eq!(
        deadlock.to_string(),
        "deadlock: rank 0 waits on rank 1 (tag 0x7) -> \
         rank 1 waits on rank 0 (tag 0x7) -> rank 0"
    );
}

#[test]
fn lost_message_shows_up_as_orphan_or_stall() {
    // Rank 0 sends on tag 3 but rank 1 listens on tag 4: the receive can
    // never complete and the send is never consumed.
    let trace = WorldTrace {
        ranks: vec![
            vec![Event::Send {
                dst: 1,
                tag: 3,
                bytes: 4,
                internal: false,
            }],
            vec![Event::Recv {
                src: 0,
                tag: 4,
                bytes: 4,
                internal: false,
            }],
        ],
    };
    let violations = check(&trace).expect_err("tag mismatch must be flagged");
    assert!(
        violations.len() >= 2,
        "both the unreceivable recv and the orphan send should surface: {violations:?}"
    );
}
