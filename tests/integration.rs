//! Workspace integration tests: cross-crate flows exercised end-to-end.
//!
//! Each test stitches several crates together the way a user would —
//! engines + communicators + statistics + oracles — rather than testing a
//! module in isolation.

use qmc_comm::{job_seconds, run_model, run_threads, Communicator, MachineModel, SerialComm};
use qmc_core::pt::{geometric_ladder, PtLadder};
use qmc_core::replica::run_replicas;
use qmc_ed::xxz::{full_spectrum, XxzParams};
use qmc_lattice::{Chain, Square};
use qmc_rng::{StreamFactory, Xoshiro256StarStar};
use qmc_stats::{BinningAnalysis, Histogram, Wham};
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{Worldline, WorldlineParams};

/// Worldline + SSE + ED: three independent implementations of the same
/// Hamiltonian agree on the energy.
#[test]
fn three_way_energy_agreement() {
    let l = 8;
    let beta = 1.0;
    let lat = Chain::new(l);
    let exact = full_spectrum(&lat, &XxzParams::heisenberg(1.0)).energy(beta) / l as f64;

    let mut wl = Worldline::new(WorldlineParams {
        l,
        jx: 1.0,
        jz: 1.0,
        beta,
        m: 16,
    });
    let mut rng = Xoshiro256StarStar::new(1);
    let ws = wl.run(&mut rng, 3_000, 25_000);
    let bw = BinningAnalysis::new(&ws.energy, 16);
    let trotter = (beta / 16.0).powi(2) * 2.0;
    assert!(
        (bw.mean - exact).abs() < 4.0 * bw.error().max(3e-4) + trotter,
        "worldline {} ± {} vs {exact}",
        bw.mean,
        bw.error()
    );

    let mut rng2 = Xoshiro256StarStar::new(2);
    let mut sse = qmc_sse::Sse::new(&lat, 1.0, beta, &mut rng2);
    let ss = sse.run(&mut rng2, 3_000, 25_000);
    let bs = BinningAnalysis::new(&ss.energy_samples(), 16);
    assert!(
        (bs.mean - exact).abs() < 4.0 * bs.error().max(3e-4),
        "sse {} ± {} vs {exact}",
        bs.mean,
        bs.error()
    );
}

/// Replica driver over real threads feeding SSE points, gathered at
/// rank 0, each point matching the ED curve.
#[test]
fn replica_parallel_temperature_scan() {
    let l = 8;
    let betas = [0.5, 1.0, 1.5, 2.0];
    let results = run_threads(2, move |comm| {
        run_replicas(comm, betas.len(), |idx| {
            let lat = Chain::new(l);
            let mut rng = StreamFactory::new(99).stream(idx);
            let mut sse = qmc_sse::Sse::new(&lat, 1.0, betas[idx], &mut rng);
            let series = sse.run(&mut rng, 2_000, 15_000);
            let b = BinningAnalysis::new(&series.energy_samples(), 16);
            vec![b.mean, b.error()]
        })
    });
    let table = results[0].as_ref().expect("rank 0 gathers");
    let spec = full_spectrum(&Chain::new(l), &XxzParams::heisenberg(1.0));
    for (idx, row) in table.iter().enumerate() {
        let exact = spec.energy(betas[idx]) / l as f64;
        assert!(
            (row[0] - exact).abs() < 5.0 * row[1].max(3e-4),
            "β={}: {} ± {} vs {exact}",
            betas[idx],
            row[0],
            row[1]
        );
    }
}

/// The distributed TFIM engine produces the same physics on the thread
/// machine and the simulated mesh (identical algorithm, different
/// "hardware").
#[test]
fn thread_and_model_machines_agree_physically() {
    let model = TfimModel {
        lx: 8,
        ly: 1,
        j: 1.0,
        h: 1.0,
        beta: 2.0,
        m: 16,
    };
    let threads = run_threads(2, move |comm| {
        let mut eng = DistTfim::new(model, comm);
        let mut rng = StreamFactory::new(3).stream(comm.rank());
        eng.run(comm, &mut rng, 1_000, 8_000)
    });
    let modeled = run_model(2, MachineModel::mesh_1993(2), move |comm| {
        let mut eng = DistTfim::new(model, comm);
        let mut rng = StreamFactory::new(3).stream(comm.rank());
        eng.run(comm, &mut rng, 1_000, 8_000)
    });
    // Same seeds, same rank count ⇒ *identical* Markov chains.
    assert_eq!(threads[0].energy, modeled[0].result.energy);
    assert!(job_seconds(&modeled) > 0.0);
}

/// Histogram reweighting across worldline runs: two nearby temperatures
/// WHAM-combined interpolate to a third, matching ED.
#[test]
fn wham_interpolates_worldline_histograms() {
    let l = 8;
    let lat = Chain::new(l);
    let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));

    // Collect energy histograms at two temperatures (total energy bins).
    let run_hist = |beta: f64, seed: u64| {
        let mut wl = Worldline::new(WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta,
            m: 16,
        });
        let mut rng = Xoshiro256StarStar::new(seed);
        let series = wl.run(&mut rng, 3_000, 30_000);
        let mut h = Histogram::new(-6.0, 2.0, 64);
        for &e in &series.energy {
            h.record(e * l as f64);
        }
        h
    };
    let betas = [0.8, 1.25];
    let hists = vec![run_hist(betas[0], 7), run_hist(betas[1], 8)];
    let wham = Wham::solve(&betas, &hists, 1e-10, 2000);
    let interp = wham.mean_energy(1.0) / l as f64;
    let exact = spec.energy(1.0) / l as f64;
    // WHAM inherits the worldline's Trotter bias plus interpolation error.
    assert!((interp - exact).abs() < 0.02, "WHAM {interp} vs ED {exact}");
}

/// Parallel tempering beats plain Metropolis at relaxing from a cold
/// start across temperatures (smoke test that the machinery cooperates).
#[test]
fn tempering_ladder_end_to_end() {
    let mut ladder = PtLadder::new(8, 1.0, 1.0, 16, geometric_ladder(0.5, 2.0, 4));
    let mut rng = Xoshiro256StarStar::new(11);
    let energies = ladder.run(&mut rng, 500, 4_000, 2);
    assert_eq!(energies.len(), 4);
    // Energies must be ordered: colder replica ⇒ lower energy.
    let means: Vec<f64> = energies
        .iter()
        .map(|e| e.iter().sum::<f64>() / e.len() as f64)
        .collect();
    for w in means.windows(2) {
        assert!(w[1] < w[0] + 0.02, "E(β↑) should decrease: {means:?}");
    }
}

/// The experiment registry is complete and runnable (quick smoke of the
/// fast entries).
#[test]
fn experiment_registry_complete() {
    let reg = qmc_bench::registry();
    let ids: Vec<&str> = reg.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids,
        vec!["f1", "f2", "f3", "f4", "f5", "t1", "t2", "t3", "t4", "t5", "t6"]
    );
}

/// ModelWorld scaling tables are bit-deterministic run to run.
#[test]
fn scaling_experiments_deterministic() {
    let a = qmc_bench::scaling::t1_strong_scaling(true);
    let b = qmc_bench::scaling::t1_strong_scaling(true);
    assert_eq!(a, b);
}

/// Serial communicator supports the full engine stack (degenerate P=1).
#[test]
fn serial_comm_runs_distributed_engine() {
    let model = TfimModel {
        lx: 8,
        ly: 8,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 4,
    };
    let mut comm = SerialComm::new();
    let mut eng = DistTfim::new(model, &comm);
    let mut rng = Xoshiro256StarStar::new(5);
    let series = eng.run(&mut comm, &mut rng, 200, 500);
    assert_eq!(series.energy.len(), 500);
    assert!(series.energy.iter().all(|e| e.is_finite()));
    assert_eq!(comm.rank(), 0);
}

/// 2-D SSE at low temperature approaches the 4×4 Lanczos ground state —
/// the full oracle stack (basis, matrix-free op, Lanczos) in one test.
#[test]
fn sse_2d_reaches_lanczos_ground_state() {
    let lat = Square::new(4, 4);
    let mut rng = Xoshiro256StarStar::new(21);
    let mut sse = qmc_sse::Sse::new(&lat, 1.0, 6.0, &mut rng);
    let series = sse.run(&mut rng, 3_000, 12_000);
    let b = BinningAnalysis::new(&series.energy_samples(), 16);

    let op = qmc_ed::lanczos::XxzSectorOp::new(&lat, XxzParams::heisenberg(1.0), 8);
    let e0 = qmc_ed::lanczos::lanczos_ground_energy(&op, 13, 300, 1e-10) / 16.0;
    assert!(
        (b.mean - e0).abs() < 5.0 * b.error().max(5e-4) + 4e-3,
        "SSE {} ± {} vs Lanczos {e0}",
        b.mean,
        b.error()
    );
}
