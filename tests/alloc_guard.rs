//! Zero-steady-state-allocation guard for the four QMC engines.
//!
//! The hot-kernel discipline (see `qmc-lint`'s `hot-alloc` rule) says
//! sweeps may only touch preallocated state. The text lint proves no
//! allocating *call* appears in a `#[qmc_hot::hot]` region; this harness
//! proves the *runtime* claim: after warmup, a sweep performs zero heap
//! allocations — however the calls are spelled or inlined.
//!
//! A counting `#[global_allocator]` tallies allocations per thread
//! (thread-local, so the parallel test harness and unrelated test
//! threads cannot bleed into each other's counts).

use qmc_lattice::Square;
use qmc_rng::{Buffered, Xoshiro256StarStar};
use qmc_sse::Sse;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{GenericParams, GenericWorldline, Worldline, WorldlineParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Forwards to the system allocator, counting every allocation made by
/// the current thread. `try_with` keeps late TLS-teardown allocations
/// from recursing or aborting.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place is still a steady-state allocation as far as
        // the discipline is concerned.
        let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Count this thread's allocations across `f`.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOC_COUNT.with(|c| c.get());
    f();
    ALLOC_COUNT.with(|c| c.get()) - before
}

/// Assert the engine allocates nothing over `sweeps` steady-state sweeps.
fn assert_steady_state_clean(name: &str, sweeps: u64, mut sweep: impl FnMut()) {
    let n = allocations_during(|| {
        for _ in 0..sweeps {
            sweep();
        }
    });
    assert_eq!(
        n, 0,
        "{name}: {n} heap allocation(s) across {sweeps} steady-state sweeps \
         (hot kernels must only reuse preallocated buffers)"
    );
}

#[test]
fn serial_tfim_sweep_is_allocation_free() {
    let model = TfimModel {
        lx: 16,
        ly: 16,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    let mut eng = SerialTfim::new(model);
    let mut rng = Buffered::new(Xoshiro256StarStar::new(21));
    for _ in 0..20 {
        eng.metropolis_sweep(&mut rng); // warmup: tables, RNG buffer
    }
    assert_steady_state_clean("SerialTfim::metropolis_sweep", 100, || {
        eng.metropolis_sweep(&mut rng)
    });
}

#[test]
fn worldline_sweep_is_allocation_free() {
    let params = WorldlineParams {
        l: 32,
        jx: 1.0,
        jz: 1.0,
        beta: 2.0,
        m: 8,
    };
    let mut w = Worldline::new(params);
    let mut rng = Xoshiro256StarStar::new(22);
    for _ in 0..50 {
        w.sweep(&mut rng);
    }
    assert_steady_state_clean("Worldline::sweep", 100, || w.sweep(&mut rng));
}

#[test]
fn generic_worldline_sweep_is_allocation_free() {
    let params = GenericParams {
        jx: 1.0,
        jz: 1.0,
        beta: 2.0,
        m: 8,
    };
    let mut w = GenericWorldline::new(Square::new(8, 8), params);
    let mut rng = Xoshiro256StarStar::new(23);
    for _ in 0..50 {
        w.sweep(&mut rng);
    }
    assert_steady_state_clean("GenericWorldline::sweep", 100, || w.sweep(&mut rng));
}

#[test]
fn sse_sweep_is_allocation_free() {
    let lat = Square::new(8, 8);
    let mut rng = Xoshiro256StarStar::new(24);
    let mut sse = Sse::new(&lat, 1.0, 2.0, &mut rng);
    // Thermalize until the operator-string cutoff stops growing — cutoff
    // growth legitimately reallocates, so steady state starts after it.
    let _ = sse.run(&mut rng, 500, 0);
    assert_steady_state_clean("Sse::sweep", 100, || sse.sweep(&mut rng));
}
