//! Elastic-world integration tests.
//!
//! The contract of `qmc_comm::run_threads_elastic` plus the rejoin path
//! of `qmc_ckpt::coord` is that a rank death is *absorbed*: the
//! supervisor respawns a fresh thread into the dead slot, every rank
//! rolls back to the newest coordinated generation, and the finished
//! run is indistinguishable — observables AND RNG draw counts — from
//! one that never died. The crash matrix below kills each rank of a
//! 4-rank parallel-tempering world at every sweep boundary and demands
//! exactly that. The resize tests pin the second policy: when the
//! world cannot be respawned at full size, the β ladder shrinks (or
//! re-grows) to fit, survivors are remapped onto the new world by β,
//! and a re-grown rung joins fresh at the checkpoint boundary.

use qmc_ckpt::{Checkpoint, CkptStore};
use qmc_comm::{run_threads, run_threads_elastic, Communicator};
use qmc_core::pt::{run_pt_parallel_ckpt, PtCheckpointing, PtConfig, PtLadder};
use qmc_rng::{Rng64, StreamFactory};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counts raw draws while forwarding to the wrapped generator, and
/// checkpoints the count alongside the generator state — so a respawned
/// rank that rolled back to generation `g` ends the run with exactly
/// the reference's total draw count.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R> CountingRng<R> {
    fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }
}

impl<R: Rng64> Rng64 for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        self.draws += out.len() as u64;
        self.inner.fill_u64(out);
    }
}

impl<R: Checkpoint> Checkpoint for CountingRng<R> {
    fn kind(&self) -> &'static str {
        "test.counting-rng"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.draws);
        enc.state(&self.inner);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.draws = dec.u64()?;
        dec.load_state(&mut self.inner)
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Unique scratch checkpoint directory (std-only, no tempdir crate).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qmc-elastic-it-{}-{label}-{n}", std::process::id()))
}

/// Copy a flat checkpoint directory so two runs can resume from the
/// same generations without sharing a store.
fn copy_store(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy dst");
    for entry in std::fs::read_dir(src).expect("copy src") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy generation");
    }
}

/// Serializes panic-hook swaps: the crash matrix unwinds whole worlds
/// on purpose, and silencing that spam must not race another test.
static HOOK: Mutex<()> = Mutex::new(());

fn pt_cfg() -> PtConfig {
    PtConfig {
        l: 6,
        jx: 1.0,
        jz: 1.0,
        m: 6,
        betas: vec![0.5, 0.8, 1.2, 1.8],
        therm: 4,
        sweeps: 10,
        exchange_every: 2,
        seed: 99,
    }
}

/// (energy series, acceptance rates, total RNG draws) per rank.
type RankOut = (Vec<f64>, Vec<f64>, u64);

/// Uninterrupted reference: checkpointing off is pinned bit-identical
/// to checkpointing on by the checkpoint suite, so this is the ground
/// truth for every elastic run below.
fn reference(cfg: &PtConfig) -> Vec<RankOut> {
    let cfg2 = cfg.clone();
    run_threads(cfg.betas.len(), move |comm| {
        let mut rng = CountingRng::new(StreamFactory::new(17).stream(comm.rank()));
        let (e, r) = run_pt_parallel_ckpt(comm, &cfg2, &mut rng, None, |_, _| {});
        (e, r, rng.draws)
    })
}

/// Kill each rank at every sweep boundary; the in-place respawn must
/// finish bit-identical to the uninterrupted reference with equal RNG
/// draw counts on every rank.
#[test]
fn respawn_crash_matrix_is_bit_identical_with_equal_draws() {
    let cfg = pt_cfg();
    let want = reference(&cfg);
    let total = cfg.therm + cfg.sweeps;

    let guard = HOOK.lock().expect("hook guard");
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for victim in 0..cfg.betas.len() {
        for kill in 1..total {
            let dir = scratch("matrix");
            let fired = Arc::new(AtomicBool::new(false));
            let cfg2 = cfg.clone();
            let dir2 = dir.clone();
            let fired2 = Arc::clone(&fired);
            let run =
                run_threads_elastic(cfg.betas.len(), Duration::from_secs(30), 1, move |comm| {
                    let mut rng = CountingRng::new(StreamFactory::new(17).stream(comm.rank()));
                    let store = CkptStore::new(&dir2, 3).expect("store");
                    let ck = PtCheckpointing {
                        store: &store,
                        every: 2,
                        full_every: 2,
                        resume: true,
                        stop: None,
                        elastic_from: None,
                    };
                    let fired = Arc::clone(&fired2);
                    let (e, r) =
                        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), move |c, s| {
                            // One-shot: the respawned world replays this
                            // boundary and must not die on it again.
                            if s == kill
                                && c.rank() == victim
                                && !fired.swap(true, Ordering::SeqCst)
                            {
                                panic!("injected kill: rank {victim} at sweep {s}");
                            }
                        });
                    (e, r, rng.draws)
                })
                .unwrap_or_else(|e| panic!("kill rank {victim} at sweep {kill}: {e:?}"));

            assert_eq!(
                run.respawned.len(),
                1,
                "kill rank {victim} at sweep {kill}: exactly one respawn expected"
            );
            for (rank, (got, exp)) in run.results.iter().zip(&want).enumerate() {
                assert_eq!(
                    bits(&got.0),
                    bits(&exp.0),
                    "kill rank {victim} at sweep {kill}: rank {rank} energy series diverged"
                );
                assert_eq!(
                    bits(&got.1),
                    bits(&exp.1),
                    "kill rank {victim} at sweep {kill}: rank {rank} rates diverged"
                );
                assert_eq!(
                    got.2, exp.2,
                    "kill rank {victim} at sweep {kill}: rank {rank} RNG draw count diverged"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    std::panic::set_hook(hook);
    drop(guard);
}

/// Seed a full-ladder checkpointed run with one mid-run generation, so
/// the resize tests have a coordinated boundary to rehydrate from.
fn seed_store(cfg: &PtConfig, dir: &Path, every: usize) {
    let cfg2 = cfg.clone();
    let dir2 = dir.to_path_buf();
    run_threads(cfg.betas.len(), move |comm| {
        let mut rng = CountingRng::new(StreamFactory::new(17).stream(comm.rank()));
        let store = CkptStore::new(&dir2, 3).expect("seed store");
        let ck = PtCheckpointing {
            store: &store,
            every,
            full_every: 0,
            resume: false,
            stop: None,
            elastic_from: None,
        };
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, _| {})
    });
}

/// One resumed run on a (possibly resized) ladder, rehydrating from
/// `dir` with the pre-resize ladder declared via `elastic_from`.
fn resized_run(cfg: &PtConfig, old_betas: &[f64], dir: &Path, every: usize) -> Vec<RankOut> {
    let cfg2 = cfg.clone();
    let dir2 = dir.to_path_buf();
    let old: Vec<f64> = old_betas.to_vec();
    run_threads(cfg.betas.len(), move |comm| {
        let mut rng = CountingRng::new(StreamFactory::new(17).stream(comm.rank()));
        let store = CkptStore::new(&dir2, 3).expect("resize store");
        let ck = PtCheckpointing {
            store: &store,
            every,
            full_every: 0,
            resume: true,
            stop: None,
            elastic_from: Some(&old),
        };
        let (e, r) = run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, _| {});
        (e, r, rng.draws)
    })
}

/// Shrink 4 → 3 rungs: the resumed world must be deterministic (two
/// resumes from the same generations are bit-identical) and the
/// surviving βs must agree statistically with a serial ladder built
/// directly at those temperatures.
#[test]
fn shrink_resize_is_deterministic_and_matches_the_serial_ladder() {
    let mut cfg = pt_cfg();
    cfg.therm = 8;
    cfg.sweeps = 40;
    let every = 16; // generations 0 and 16: one mid-run boundary
    let dir = scratch("shrink-seed");
    seed_store(&cfg, &dir, every);

    // Drop the third rung; survivors keep strictly-increasing βs.
    let old_betas = cfg.betas.clone();
    let shrunk = PtConfig {
        betas: vec![0.5, 0.8, 1.8],
        ..cfg.clone()
    };
    assert!(shrunk.betas.windows(2).all(|w| w[0] < w[1]));

    let dir_b = scratch("shrink-copy");
    copy_store(&dir, &dir_b);
    let a = resized_run(&shrunk, &old_betas, &dir, every);
    let b = resized_run(&shrunk, &old_betas, &dir_b, every);
    for (rank, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            bits(&ra.0),
            bits(&rb.0),
            "shrink resume must be deterministic (rank {rank})"
        );
        assert_eq!(ra.2, rb.2, "shrink draw counts must be deterministic");
    }
    // Survivors carry their pre-resize history: full measurement rows.
    for (e, r, _) in &a {
        assert_eq!(e.len(), shrunk.sweeps, "every survivor has a full series");
        assert_eq!(
            r.len(),
            shrunk.betas.len() - 1,
            "one rate per surviving pair"
        );
    }

    // Statistical agreement with a serial ladder at the surviving βs.
    let mut ladder = PtLadder::new(cfg.l, cfg.jx, cfg.jz, cfg.m, shrunk.betas.clone());
    let mut rng = StreamFactory::new(7).stream(0);
    let serial = ladder.run(&mut rng, cfg.therm, cfg.sweeps, cfg.exchange_every);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    for (k, (elastic, serial)) in a.iter().zip(&serial).enumerate() {
        let (me, ms) = (mean(&elastic.0), mean(serial));
        assert!(
            (me - ms).abs() < 0.35,
            "β={} energy mean diverged: elastic {me:.4} vs serial {ms:.4}",
            shrunk.betas[k]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Re-grow 2 → 3 rungs: the new middle β has no old counterpart, so it
/// joins fresh at the checkpoint boundary while both survivors resume
/// their exact state; the grow path is deterministic too.
#[test]
fn grow_joins_the_new_rung_at_the_checkpoint_boundary() {
    let cfg = PtConfig {
        betas: vec![0.6, 1.3],
        ..pt_cfg()
    };
    let every = 8; // generations 0 and 8 of 14 total sweeps
    let dir = scratch("grow-seed");
    seed_store(&cfg, &dir, every);

    let old_betas = cfg.betas.clone();
    let grown = PtConfig {
        betas: vec![0.6, 0.95, 1.3],
        ..cfg.clone()
    };
    let dir_b = scratch("grow-copy");
    copy_store(&dir, &dir_b);
    let a = resized_run(&grown, &old_betas, &dir, every);
    let b = resized_run(&grown, &old_betas, &dir_b, every);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(
            bits(&ra.0),
            bits(&rb.0),
            "grow resume must be deterministic"
        );
    }

    // Survivors (slots 0 and 2) carry their full restored series; the
    // joined rung (slot 1) starts measuring at the rejoin boundary:
    // sweeps 8..14 are all past therm = 4, so it records 6 samples.
    let boundary = 8usize;
    let joined_samples = (cfg.therm + cfg.sweeps) - boundary;
    assert_eq!(a[0].0.len(), cfg.sweeps, "survivor 0 keeps its history");
    assert_eq!(a[2].0.len(), cfg.sweeps, "survivor 1 keeps its history");
    assert_eq!(
        a[1].0.len(),
        joined_samples,
        "the joined rung measures only from the rejoin boundary"
    );
    for (_, r, _) in &a {
        assert_eq!(
            r.len(),
            grown.betas.len() - 1,
            "one rate per pair after grow"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_b);
}
