//! Checkpoint/restart integration tests.
//!
//! The contract of `qmc-ckpt` is that a resumed run is indistinguishable
//! from one that never stopped: with a fixed seed, killing a run at *any*
//! sweep boundary and resuming from the newest on-disk generation must
//! reproduce the final observable series bit for bit and draw exactly as
//! many random numbers. The crash matrix below kills each engine at every
//! sweep index; the parallel-tempering test kills a live rank through the
//! fault-injection layer and recovers a 4-rank ThreadWorld run from the
//! coordinated checkpoint.

use qmc_bench::ckpt_driver::{
    run_generic_worldline_ckpt, run_packed_tfim_ckpt, run_serial_tfim_ckpt, run_sse_ckpt,
    run_worldline_ckpt, CkptCfg,
};
use qmc_ckpt::{load_state, save_state, Checkpoint, CkptStore};
use qmc_comm::{run_threads, run_threads_with_timeout, Communicator, FaultPlan, FaultyComm};
use qmc_core::pt::{run_pt_parallel, run_pt_parallel_ckpt, PtCheckpointing, PtConfig, PtLadder};
use qmc_lattice::{Chain, Square};
use qmc_rng::{Rng64, StreamFactory, Xoshiro256StarStar};
use qmc_sse::Sse;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{GenericParams, GenericWorldline, Worldline, WorldlineParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts raw draws while forwarding to the wrapped generator, and
/// checkpoints the count alongside the generator state — so a resumed
/// run reports the same total draw count as an uninterrupted one.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R> CountingRng<R> {
    fn new(inner: R) -> Self {
        Self { inner, draws: 0 }
    }
}

impl<R: Rng64> Rng64 for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        self.draws += out.len() as u64;
        self.inner.fill_u64(out);
    }
}

impl<R: Checkpoint> Checkpoint for CountingRng<R> {
    fn kind(&self) -> &'static str {
        "test.counting-rng"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.draws);
        enc.state(&self.inner);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.draws = dec.u64()?;
        dec.load_state(&mut self.inner)
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Unique scratch checkpoint directory (std-only, no tempdir crate).
fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qmc-ckpt-it-{}-{label}-{n}", std::process::id()))
}

/// Crash-at-every-boundary matrix: `run(ck, kill_at, rng)` executes one
/// engine workload (`total` sweeps, fresh identically-seeded RNG each
/// call) and returns its observable fingerprint. For every sweep index k
/// the run is killed at k and resumed; fingerprint and draw count must
/// equal the uninterrupted reference.
fn crash_matrix<T, F>(label: &str, total: usize, every: usize, run: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(Option<&CkptCfg<'_>>, Option<usize>) -> Option<(T, u64)>,
{
    let reference = run(None, None).expect("reference run completes");
    for k in 1..total {
        let dir = scratch(label);
        let store = CkptStore::new(&dir, 2).expect("scratch store");
        // `full_every: 3` exercises the delta chains: most generations in
        // the matrix are deltas against an earlier full snapshot, so every
        // bit-identity assertion below also covers delta restore.
        let ck = CkptCfg {
            store: &store,
            every,
            full_every: 3,
            resume: false,
            stop: None,
        };
        assert!(
            run(Some(&ck), Some(k)).is_none(),
            "{label}: kill at sweep {k} must abort the run"
        );
        let ck = CkptCfg {
            store: &store,
            every,
            full_every: 3,
            resume: true,
            stop: None,
        };
        let resumed = run(Some(&ck), None)
            .unwrap_or_else(|| panic!("{label}: resume after kill at {k} did not complete"));
        assert_eq!(
            reference, resumed,
            "{label}: resume after kill at sweep {k} diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn serial_tfim_resumes_bit_identical_at_every_boundary() {
    let (therm, sweeps, every) = (6, 12, 5);
    crash_matrix("tfim", therm + sweeps, every, |ck, kill| {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
        let (eng, series) = run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, ck, kill)?;
        let mut b = bits(&series.energy);
        b.extend(bits(&series.abs_m));
        b.extend(bits(&series.sigma_x));
        Some(((b, eng.accepted(), eng.proposed()), rng.draws))
    });
}

/// The replica-packed TFIM engine through the same crash matrix: every
/// lane of the bit-packed configuration, the per-lane series, and the
/// draw count must survive a kill-and-resume at every sweep boundary.
#[test]
fn packed_tfim_resumes_bit_identical_at_every_boundary() {
    let (therm, sweeps, every) = (6, 12, 5);
    crash_matrix("packed-tfim", therm + sweeps, every, |ck, kill| {
        let model = TfimModel {
            lx: 8,
            ly: 8,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 4,
        };
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(29));
        let (eng, series) = run_packed_tfim_ckpt(model, 12, &mut rng, therm, sweeps, ck, kill)?;
        let mut b = Vec::new();
        for lane in &series.lanes {
            b.extend(bits(&lane.energy));
            b.extend(bits(&lane.sigma_x));
        }
        Some(((b, eng.accepted(), eng.proposed()), rng.draws))
    });
}

/// Steady-state delta generations of the packed driver stay under half
/// the size of full snapshots: the always-dirty spin words are small next
/// to the accumulated per-lane series, whose chunked dirty tracking only
/// re-writes new row chunks.
#[test]
fn packed_delta_checkpoints_stay_under_half_full_size() {
    let model = TfimModel {
        lx: 8,
        ly: 8,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 4,
    };
    let (lanes, sweeps, every) = (16usize, 600usize, 5usize);
    let run = |every: usize, full_every: usize| -> u64 {
        let dir = scratch("packed-delta");
        let store = CkptStore::new(&dir, 2).expect("scratch store");
        let ck = CkptCfg {
            store: &store,
            every,
            full_every,
            resume: false,
            stop: None,
        };
        let mut rng = Xoshiro256StarStar::new(37);
        run_packed_tfim_ckpt(model, lanes, &mut rng, 0, sweeps, Some(&ck), None)
            .expect("run completes");
        let written = store.bytes_written();
        let _ = std::fs::remove_dir_all(&dir);
        written
    };
    let gens = sweeps.div_ceil(every) as u64;
    let first = run(sweeps + 1, 0); // a single full generation at sweep 0
    let full_total = run(every, 0); // every generation a full snapshot
    let delta_total = run(every, usize::MAX); // generation 0 full, rest deltas
    let full_per_gen = (full_total - first) as f64 / (gens - 1) as f64;
    let delta_per_gen = (delta_total - first) as f64 / (gens - 1) as f64;
    let ratio = delta_per_gen / full_per_gen;
    assert!(
        ratio <= 0.5,
        "packed delta generations {delta_per_gen:.0} B vs full {full_per_gen:.0} B = {ratio:.3}x"
    );
}

#[test]
fn worldline_resumes_bit_identical_at_every_boundary() {
    let (therm, sweeps, every) = (6, 12, 5);
    crash_matrix("worldline", therm + sweeps, every, |ck, kill| {
        let params = WorldlineParams {
            l: 8,
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        };
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(11));
        let (eng, series) = run_worldline_ckpt(params, &mut rng, therm, sweeps, ck, kill)?;
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        b.extend(bits(&series.correlations()));
        Some(((b, eng.local_accepted, eng.straight_accepted), rng.draws))
    });
}

#[test]
fn generic_worldline_resumes_bit_identical_at_every_boundary() {
    let (therm, sweeps, every) = (6, 12, 5);
    crash_matrix("generic", therm + sweeps, every, |ck, kill| {
        let params = GenericParams {
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 8,
        };
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(13));
        let (_eng, series) = run_generic_worldline_ckpt(
            Square::new(4, 4),
            params,
            &mut rng,
            therm,
            sweeps,
            ck,
            kill,
        )?;
        let mut b = bits(&series.energy);
        b.extend(bits(&series.magnetization));
        Some((b, rng.draws))
    });
}

#[test]
fn sse_resumes_bit_identical_at_every_boundary() {
    let (therm, sweeps, every) = (8, 12, 5);
    crash_matrix("sse", therm + sweeps, every, |ck, kill| {
        let lat = Chain::new(8);
        let mut rng = CountingRng::new(Xoshiro256StarStar::new(17));
        let (eng, series) = run_sse_ckpt(&lat, 1.0, 2.0, &mut rng, therm, sweeps, ck, kill)?;
        let mut b = bits(&series.n_ops);
        b.extend(bits(&series.magnetization));
        Some(((b, eng.cutoff()), rng.draws))
    });
}

/// The checkpointed drivers must be draw-for-draw identical to the plain
/// `run()` methods when checkpointing is off.
#[test]
fn ckpt_drivers_match_plain_runs() {
    // Serial TFIM.
    let model = TfimModel {
        lx: 8,
        ly: 8,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 4,
    };
    let mut rng = Xoshiro256StarStar::new(7);
    let plain = SerialTfim::new(model).run(&mut rng, 10, 30, 1);
    let mut rng = Xoshiro256StarStar::new(7);
    let (_, drv) = run_serial_tfim_ckpt(model, &mut rng, 10, 30, 1, None, None).unwrap();
    assert_eq!(bits(&plain.energy), bits(&drv.energy));
    assert_eq!(bits(&plain.sigma_x), bits(&drv.sigma_x));

    // Replica-packed TFIM.
    let mut rng = Xoshiro256StarStar::new(29);
    let plain = qmc_tfim::packed::PackedReplicas::new(model, 12).run(&mut rng, 10, 30);
    let mut rng = Xoshiro256StarStar::new(29);
    let (_, drv) = run_packed_tfim_ckpt(model, 12, &mut rng, 10, 30, None, None).unwrap();
    for (p, d) in plain.iter().zip(&drv.lanes) {
        assert_eq!(bits(&p.energy), bits(&d.energy));
        assert_eq!(bits(&p.sigma_x), bits(&d.sigma_x));
    }

    // World-line chain.
    let params = WorldlineParams {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        beta: 1.0,
        m: 8,
    };
    let mut rng = Xoshiro256StarStar::new(11);
    let plain = Worldline::new(params).run(&mut rng, 10, 30);
    let mut rng = Xoshiro256StarStar::new(11);
    let (_, drv) = run_worldline_ckpt(params, &mut rng, 10, 30, None, None).unwrap();
    assert_eq!(bits(&plain.energy), bits(&drv.energy));
    assert_eq!(bits(&plain.correlations()), bits(&drv.correlations()));

    // Generic world-line.
    let params = GenericParams {
        jx: 1.0,
        jz: 1.0,
        beta: 1.0,
        m: 8,
    };
    let mut rng = Xoshiro256StarStar::new(13);
    let plain = GenericWorldline::new(Square::new(4, 4), params).run(&mut rng, 10, 30);
    let mut rng = Xoshiro256StarStar::new(13);
    let (_, drv) =
        run_generic_worldline_ckpt(Square::new(4, 4), params, &mut rng, 10, 30, None, None)
            .unwrap();
    assert_eq!(bits(&plain.energy), bits(&drv.energy));

    // SSE.
    let lat = Chain::new(8);
    let mut rng = Xoshiro256StarStar::new(17);
    let plain = Sse::new(&lat, 1.0, 2.0, &mut rng).run(&mut rng, 20, 40);
    let mut rng = Xoshiro256StarStar::new(17);
    let (_, drv) = run_sse_ckpt(&lat, 1.0, 2.0, &mut rng, 20, 40, None, None).unwrap();
    assert_eq!(bits(&plain.n_ops), bits(&drv.n_ops));
    assert_eq!(bits(&plain.magnetization), bits(&drv.magnetization));
}

fn pt_cfg() -> PtConfig {
    PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 8,
        betas: vec![0.5, 0.8, 1.2, 1.8],
        therm: 10,
        sweeps: 26,
        exchange_every: 2,
        seed: 99,
    }
}

/// `run_pt_parallel_ckpt` with checkpointing off must be bit-identical
/// to `run_pt_parallel` on every rank.
#[test]
fn pt_ckpt_driver_matches_run_pt_parallel() {
    let cfg = pt_cfg();
    let cfg2 = cfg.clone();
    let plain = run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel(comm, &cfg2, &mut rng)
    });
    let cfg2 = cfg.clone();
    let drv = run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, None, |_, _| {})
    });
    for (p, d) in plain.iter().zip(&drv) {
        assert_eq!(bits(&p.0), bits(&d.0), "energy series diverged");
        assert_eq!(bits(&p.1), bits(&d.1), "acceptance rates diverged");
    }
}

/// Kill rank 2 of a 4-rank ThreadWorld PT run through the fault layer
/// (peers engage recv retry/backoff, give up, and the world goes down),
/// then recover from the coordinated checkpoint and finish bit-identical
/// to a run that never crashed.
#[test]
fn pt_recovers_bit_identical_after_injected_rank_kill() {
    let cfg = pt_cfg();
    let every = 4;
    let kill_sweep = 2 * (cfg.therm + cfg.sweeps) / 3;
    let dir = scratch("pt-kill");

    let cfg2 = cfg.clone();
    let reference = run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, None, |_, _| {})
    });

    // Crash run: the scheduled kill panics rank 2; its partners exhaust
    // their bounded retries and the join propagates the panic. The hook
    // is silenced so the expected crash does not spam the test log.
    let cfg2 = cfg.clone();
    let dir2 = dir.clone();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        run_threads_with_timeout(4, Duration::from_secs(5), move |comm| {
            let plan = FaultPlan::new(41)
                .kill(2, kill_sweep)
                .retry(3, Duration::from_millis(10));
            let mut rng = StreamFactory::new(17).stream(comm.rank());
            let store = CkptStore::new(&dir2, 3).expect("store");
            let ck = PtCheckpointing {
                store: &store,
                every,
                full_every: 2,
                resume: false,
                stop: None,
                elastic_from: None,
            };
            let mut faulty = FaultyComm::new(comm, plan);
            run_pt_parallel_ckpt(&mut faulty, &cfg2, &mut rng, Some(&ck), |c, s| {
                c.tick_sweep(s)
            })
        })
    }));
    std::panic::set_hook(hook);
    assert!(
        crashed.is_err(),
        "the injected rank kill must crash the run"
    );

    // A coordinated generation at or before the kill survived on disk.
    let store = CkptStore::new(&dir, 3).expect("store");
    let newest = *store.generations().last().expect("a generation survived");
    assert!(newest as usize <= kill_sweep);

    // Recovery: fresh world, faults absorbable-only, resume and finish.
    let cfg2 = cfg.clone();
    let dir2 = dir.clone();
    let recovered = run_threads(4, move |comm| {
        let plan = FaultPlan::new(43)
            .drops(20)
            .delays(30)
            .retry(8, Duration::from_millis(25));
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        let store = CkptStore::new(&dir2, 3).expect("store");
        let ck = PtCheckpointing {
            store: &store,
            every,
            full_every: 2,
            resume: true,
            stop: None,
            elastic_from: None,
        };
        let mut faulty = FaultyComm::new(comm, plan);
        run_pt_parallel_ckpt(&mut faulty, &cfg2, &mut rng, Some(&ck), |c, s| {
            c.tick_sweep(s)
        })
    });

    for (r, rec) in reference.iter().zip(&recovered) {
        assert_eq!(bits(&r.0), bits(&rec.0), "recovered energy series diverged");
        assert_eq!(bits(&r.1), bits(&rec.1), "recovered rates diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Forward compatibility: a v1 monolithic checkpoint (the pre-delta
/// layout — whole engine/rng/series states as single opaque sections)
/// must still resume under the sectioned delta driver, continue
/// bit-identically, and safely switch to the new layout for subsequent
/// generations.
#[test]
fn v1_monolithic_checkpoints_resume_under_the_delta_driver() {
    let model = TfimModel {
        lx: 8,
        ly: 8,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 4,
    };
    let (therm, sweeps) = (6, 12);
    let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
    let (_, reference) = run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, None, None)
        .expect("reference run completes");
    let (ref_bits, ref_draws) = (bits(&reference.energy), rng.draws);

    // Hand-build the legacy generation at sweep k exactly as the
    // pre-delta driver wrote it: replay k sweeps, then store whole
    // states as single sections.
    let k = 7usize;
    let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
    let mut eng = SerialTfim::new(model);
    let mut series = qmc_tfim::serial::TfimSeries::default();
    for s in 0..k {
        eng.metropolis_sweep(&mut rng);
        eng.wolff_update(&mut rng);
        if s >= therm {
            series.record(&eng.measure());
        }
    }
    let dir = scratch("v1-compat");
    {
        let store = CkptStore::new(&dir, 2).expect("scratch store");
        let mut file = qmc_ckpt::CkptFile::new();
        let mut meta = qmc_ckpt::Encoder::new();
        meta.u64(k as u64);
        file.add("meta", meta.into_bytes());
        file.add_state("engine", &eng);
        file.add_state("rng", &rng);
        file.add_state("series", &series);
        store.write(k as u64, &file).expect("legacy write");
    }

    // Resume from the v1 file with delta checkpointing fully enabled.
    let store = CkptStore::new(&dir, 2).expect("scratch store");
    let ck = CkptCfg {
        store: &store,
        every: 5,
        full_every: 3,
        resume: true,
        stop: None,
    };
    let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
    let (_, resumed) = run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, Some(&ck), None)
        .expect("resume from v1 completes");
    assert_eq!(ref_bits, bits(&resumed.energy), "v1 resume diverged");
    assert_eq!(ref_draws, rng.draws, "v1 resume drew a different count");
    assert!(
        store.generations().len() > 1,
        "the resumed run wrote new generations after the v1 file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The serial PT ladder checkpoints as one unit (replicas + pair stats +
/// walker bookkeeping): a restored ladder continues exactly like the
/// original.
#[test]
fn pt_ladder_round_trips_and_continues_identically() {
    let betas = vec![0.5, 0.8, 1.2, 1.8];
    let mut a = PtLadder::new(8, 1.0, 1.0, 8, betas.clone());
    let mut rng = Xoshiro256StarStar::new(23);
    for step in 0..20 {
        a.sweep(&mut rng);
        a.exchange(&mut rng, step % 2);
    }
    let snapshot = save_state(&a);

    let mut b = PtLadder::new(8, 1.0, 1.0, 8, betas);
    load_state(&snapshot, &mut b).expect("ladder restores");

    let mut rng_a = Xoshiro256StarStar::new(31);
    let mut rng_b = Xoshiro256StarStar::new(31);
    for step in 0..20 {
        a.sweep(&mut rng_a);
        a.exchange(&mut rng_a, step % 2);
        b.sweep(&mut rng_b);
        b.exchange(&mut rng_b, step % 2);
    }
    assert_eq!(save_state(&a), save_state(&b), "continuations diverged");
    assert_eq!(a.stats().attempted, b.stats().attempted);
    assert_eq!(a.stats().accepted, b.stats().accepted);
}

/// Graceful drain of the serial driver: a stop flag raised mid-run (here
/// deterministically, after a fixed number of RNG draws) makes the
/// driver write one final full generation at the next sweep boundary and
/// exit cleanly; resuming from that generation completes bit-identical
/// to a run that was never drained.
#[test]
fn serial_tfim_drains_at_sweep_boundary_and_resumes_bit_identical() {
    use std::sync::atomic::AtomicBool;

    /// Counts draws like `CountingRng` (same checkpoint layout) and
    /// raises the drain flag once `after` draws have been consumed.
    struct DrainRng<'a, R> {
        inner: R,
        draws: u64,
        flag: &'a AtomicBool,
        after: u64,
    }
    impl<R: Rng64> Rng64 for DrainRng<'_, R> {
        fn next_u64(&mut self) -> u64 {
            self.draws += 1;
            if self.draws >= self.after {
                self.flag.store(true, Ordering::SeqCst);
            }
            self.inner.next_u64()
        }
    }
    impl<R: Rng64 + Checkpoint> Checkpoint for DrainRng<'_, R> {
        fn kind(&self) -> &'static str {
            // Shares `CountingRng`'s kind and layout so the drained
            // checkpoint can be resumed by either wrapper.
            "test.counting-rng"
        }

        fn save(&self, enc: &mut qmc_ckpt::Encoder) {
            enc.u64(self.draws);
            enc.state(&self.inner);
        }
        fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
            self.draws = dec.u64()?;
            dec.load_state(&mut self.inner)
        }
    }

    let model = TfimModel {
        lx: 8,
        ly: 8,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 4,
    };
    let (therm, sweeps, every) = (6usize, 12usize, 5usize);

    let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
    let (_, reference) = run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, None, None)
        .expect("reference run completes");
    let (ref_bits, ref_draws) = (bits(&reference.energy), rng.draws);

    // Drain roughly halfway through the draw stream: the flag goes up
    // mid-sweep, the driver notices at the next sweep boundary.
    let dir = scratch("drain");
    let store = CkptStore::new(&dir, 3).expect("scratch store");
    let flag = AtomicBool::new(false);
    let ck = CkptCfg {
        store: &store,
        every,
        full_every: 3,
        resume: false,
        stop: Some(&flag),
    };
    let mut rng = DrainRng {
        inner: Xoshiro256StarStar::new(7),
        draws: 0,
        flag: &flag,
        after: ref_draws / 2,
    };
    assert!(
        run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, Some(&ck), None).is_none(),
        "a drained run must end early"
    );
    let drained_at = *store
        .generations()
        .last()
        .expect("drain wrote a generation");
    assert!(
        drained_at > 0 && (drained_at as usize) < therm + sweeps,
        "drain landed at sweep {drained_at}, expected mid-run"
    );

    // Resume (plain counting RNG — the checkpoint layouts match) and
    // land exactly on the undisturbed trajectory.
    let ck = CkptCfg {
        store: &store,
        every,
        full_every: 3,
        resume: true,
        stop: None,
    };
    let mut rng = CountingRng::new(Xoshiro256StarStar::new(7));
    let (_, resumed) = run_serial_tfim_ckpt(model, &mut rng, therm, sweeps, 1, Some(&ck), None)
        .expect("resumed run completes");
    assert_eq!(ref_bits, bits(&resumed.energy), "drained resume diverged");
    assert_eq!(ref_draws, rng.draws, "draw count diverged across the drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain of the 4-rank PT driver: the stop flag (read on rank 0,
/// broadcast to everyone) makes all ranks write one coordinated full
/// generation and exit together; resuming finishes bit-identical to an
/// undisturbed run.
#[test]
fn pt_drains_collectively_and_resumes_bit_identical() {
    use std::sync::atomic::AtomicBool;
    let cfg = pt_cfg();
    let every = 4;
    let drain_after = (cfg.therm + cfg.sweeps) / 2;
    let dir = scratch("pt-drain");

    let cfg2 = cfg.clone();
    let reference = run_threads(4, move |comm| {
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, None, |_, _| {})
    });

    let cfg2 = cfg.clone();
    let dir2 = dir.clone();
    let drained = run_threads(4, move |comm| {
        let flag = AtomicBool::new(false);
        let store = CkptStore::new(&dir2, 3).expect("store");
        let ck = PtCheckpointing {
            store: &store,
            every,
            full_every: 2,
            resume: false,
            stop: Some(&flag),
            elastic_from: None,
        };
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, s| {
            if s == drain_after {
                flag.store(true, Ordering::SeqCst);
            }
        })
    });
    // Every rank exited early together with the same partial series len.
    for (energies, _) in &drained {
        assert_eq!(
            energies.len(),
            drain_after + 1 - cfg.therm,
            "rank drained at the wrong boundary"
        );
    }
    let store = CkptStore::new(&dir, 3).expect("store");
    assert_eq!(
        *store
            .generations()
            .last()
            .expect("drain wrote a generation"),
        (drain_after + 1) as u64,
        "the drain generation names the boundary after the flag was raised"
    );

    let cfg2 = cfg.clone();
    let dir2 = dir.clone();
    let resumed = run_threads(4, move |comm| {
        let store = CkptStore::new(&dir2, 3).expect("store");
        let ck = PtCheckpointing {
            store: &store,
            every,
            full_every: 2,
            resume: true,
            stop: None,
            elastic_from: None,
        };
        let mut rng = StreamFactory::new(17).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, _| {})
    });
    for (r, d) in reference.iter().zip(&resumed) {
        assert_eq!(bits(&r.0), bits(&d.0), "drained PT resume diverged");
        assert_eq!(bits(&r.1), bits(&d.1), "drained PT rates diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
