#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== observability: determinism + artifact schema =="
cargo test -q -p qmc-bench --test observability

echo "== fault injection: comm conformance + crash/resume matrix =="
cargo test -q -p qmc-comm --test conformance
cargo test -q -p qmc-bench --test checkpoint
cargo test -q -p qmc-bench --lib faults

echo "All checks passed."
