#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Run from anywhere inside the repository.
#
#   scripts/check.sh          — the standard gate
#   scripts/check.sh --full   — additionally run the suite under Miri
#                               when the toolchain has it (skipped
#                               gracefully offline: `rustup component
#                               add miri` needs the network)
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

FULL=0
for arg in "$@"; do
  case "$arg" in
    --full) FULL=1 ;;
    *) echo "usage: $0 [--full]" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== observability: determinism + artifact schema =="
cargo test -q -p qmc-bench --test observability

echo "== fault injection: comm conformance + crash/resume matrix =="
cargo test -q -p qmc-comm --test conformance
cargo test -q -p qmc-bench --test checkpoint
cargo test -q -p qmc-bench --lib faults

echo "== checkpointing: delta store, GC race, coordinated restore =="
# The qmc-ckpt unit suites: v2 delta parsing/resolution, delta chains
# (prune/base retention, torn-delta fallback, compaction), the
# store-open GC vs live-writer race, and world-size-mismatch /
# truncated-broadcast degradation in coordinated restore.
cargo test -q -p qmc-ckpt

echo "== verify: protocol trace checker + workspace lint =="
# qmc-lint over the workspace (token-level invariants), the trace
# checker's self-tests, the runtime deadlock-detector suite, the
# zero-steady-state-allocation guard, and the recorded-PT verification.
cargo run -q -p qmc-verify --bin qmc-lint
cargo test -q -p qmc-verify
cargo test -q -p qmc-comm --test deadlock
cargo test -q -p qmc-bench --test alloc_guard
cargo run -q -p qmc-bench --bin repro -- verify

echo "== explore: DPOR protocol exploration + model conformance =="
# Exhaustive interleaving exploration (sleep sets + DPOR) of the
# checkpoint-commit, drain-verdict, and scheduler protocol models at
# the committed budgets, plus the model<->implementation conformance
# suite: every seeded mutant's minimized counterexample must replay
# against the real Sched / CkptStore / ThreadComm and reproduce the
# violation. (`repro verify` act 4 re-runs the budget+ratio guards and
# regenerates VERIFY_explore.json.)
cargo test -q -p qmc-bench --test explore

echo "== serve: multi-tenant job server fault drill =="
# 240 jobs from four tenants over TCP with five injected worker deaths,
# a PT world kill, and a drain/restart — every result must be
# bit-identical to a direct run with zero jobs lost. The same drill is
# pinned as the `serve` integration test; running the binary here also
# regenerates METRICS_serve.json.
cargo run -q --release -p qmc-bench --bin repro -- serve-demo --quick

echo "== elastic: rank respawn + ladder resize drill =="
# A 4-rank PT world loses a rank mid-flight and must finish
# bit-identical (observables + RNG draw counts) after an in-place
# respawn; the same death with a zero budget shrinks the β ladder and
# resumes the survivors deterministically. The crash matrix behind it
# is pinned as the `elastic` integration test; the binary regenerates
# VERIFY_elastic.json.
cargo test -q --release -p qmc-bench --test elastic
cargo run -q --release -p qmc-bench --bin repro -- elastic --quick

echo "== analyze: causal trace -> critical-path report =="
# Records the 4-rank traced PT demo, merges the per-rank streams into
# the happens-before DAG, and prints the critical path + attribution.
# Exits non-zero if message matching or the path walk fails.
cargo run -q --release -p qmc-bench --bin repro -- analyze

echo "== bench-quick: packed-kernel speedup guard =="
# A shrunk fixed-seed bench run (median of 5) asserting the multi-spin
# coded sweep stays >= 2x the scalar kernel (the full-run target is 4x;
# --quick relaxes it so gate latency stays in seconds). Exits non-zero
# when the guard misses.
cargo run -q --release -p qmc-bench --bin repro -- bench --quick --assert-guards

if [ "$FULL" = "1" ]; then
  if cargo miri --version >/dev/null 2>&1; then
    echo "== full: cargo miri test (UB check) =="
    # Miri cannot run the timing-sensitive thread-world suites; the pure
    # data-structure crates are where UB would hide.
    cargo miri test -q -p qmc-rng -p qmc-stats -p qmc-lattice -p qmc-ckpt -p qmc-verify
  else
    echo "== full: miri not installed; skipping (rustup component add miri) =="
  fi
fi

echo "All checks passed."
